(** Cooperative processes over the simulation engine.

    Processes model the threads of the simulated OSs — in particular
    rumprun's non-preemptive BMK threads, whose cooperative behaviour is
    central to Kite's netback/blkback design.  A process runs until it
    performs a blocking operation ([sleep], [yield], [suspend] or a wait on
    a {!Condition}/{!Mailbox}); it is then resumed through the engine's
    event queue, keeping execution deterministic.

    Implemented with OCaml 5 effect handlers; the blocking operations may
    only be called from inside a process body. *)

type sched

val scheduler : Engine.t -> sched
(** A scheduler bound to an engine.  Several schedulers may share one
    engine (e.g. one per simulated machine). *)

val engine : sched -> Engine.t

val set_check : sched -> Kite_check.Check.t option -> unit
(** Attach (or detach) an invariant checker.  Attachment is dynamic:
    already-running processes register with the new instance at their
    next step, so mid-run attachment instruments everything (events from
    before the attach are simply absent).  With [None] (the default) the
    scheduler runs exactly as before. *)

val set_trace : sched -> Kite_trace.Trace.t option -> unit
(** Attach (or detach) an event tracer.  Same dynamic-attach semantics
    as {!set_check}: processes record spawn/block/exit events and
    attribute in-process events (hypercalls, driver milestones) to their
    track from the moment a tracer is present; with [None] the scheduler
    runs exactly as before. *)

val set_race : sched -> Kite_race.Race.t option -> unit
(** Attach (or detach) a happens-before race detector.  Processes get a
    vector clock with a spawn edge from their spawner, bump their
    atomicity epoch at every blocking point, and scope their accesses to
    the detector while running.  Same dynamic-attach semantics as
    {!set_check}. *)

val set_path : sched -> Kite_path.Path.t option -> unit
(** Attach (or detach) a critical-path attribution engine.  Processes
    push their name onto its current-process stack on every engine-queue
    (re-)entry so the hypervisor's CPU occupancy charges are attributed
    per domain per process (the continuous profiler).  Same
    dynamic-attach semantics as {!set_check}. *)

val spawn : sched -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
(** [spawn sched ~name body] starts a process at the current instant.
    [name] appears in the error raised if [body] raises.  [daemon]
    (default false) marks service loops that legitimately stay blocked
    forever, so the checker's quiescence/deadlock report skips them. *)

val live : sched -> int
(** Number of spawned processes that have not yet terminated. *)

exception Process_failure of string * exn
(** [(process name, original exception)] — raised out of the engine loop
    when a process body raises. *)

(** {1 Blocking operations (process context only)} *)

val sleep : Time.span -> unit
(** Block for a simulated duration. *)

val yield : unit -> unit
(** Reschedule at the current instant, letting other runnable processes
    execute first.  This is the explicit CPU-yield that Kite's
    orchestration applications perform to avoid monopolizing the
    cooperative scheduler. *)

val suspend : ?label:string -> (Engine.t -> (unit -> unit) -> unit) -> unit
(** [suspend register] blocks the current process; [register] is called
    with the engine and a one-shot [resume] closure that makes the process
    runnable again at the instant [resume] is invoked.  Building block for
    {!Condition} and {!Mailbox}.  [label] names what is being waited on in
    the checker's deadlock report. *)
