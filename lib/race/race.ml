(* Happens-before race and atomicity-violation detection over the DES.

   The simulation is single-threaded OCaml, so nothing here is a data race
   in the memory-model sense.  What the detector finds is *logical*
   concurrency bugs: two cooperative processes touching the same piece of
   shared simulated state (ring slots and indices, grant entries, page
   contents, xenstore nodes, queue cursors) with no happens-before path
   between the two accesses, and read-modify-writes that straddle a
   blocking point without re-validation.  Those are exactly the accesses
   that a different interleaving — one the schedule explorer in [Engine]
   can produce — may reorder.

   Model:
   - one sparse vector clock per process; a process's own component is
     bumped at every release;
   - synchronization primitives are modelled as named release/acquire
     channels: [Mailbox.send]/[Condition.signal]/[Event_channel.notify]
     release, the matching receive/wake/deliver acquires.  Ring
     publish/take pairs release/acquire per side, with an extra
     "consumer cursor" back-channel modelling the producer's read of the
     peer's consumer index;
   - [Process.spawn] joins the child's clock from the spawner (spawn
     edge); process exit releases into the "@exit" channel;
   - instrumented locations keep the last write plus the most recent read
     per process; an access unordered with one of those is reported as
     [race-unordered];
   - every read records a pending entry keyed by (process, location)
     together with the process's current *block epoch* (bumped at every
     sleep/yield/suspend) and the location's write generation.  A write by
     the same process whose pending read is from an older epoch is a
     read-modify-write spanning a blocking point: [race-lost-update]
     (error) when the generation moved underneath it, [race-atomicity]
     (warning) when it merely went unvalidated.

   Everything is attributed to the "current" process, maintained by
   [Process]'s step wrapper.  Outside any process (setup code, timers,
   interrupt-context event-channel handlers) accesses fall to the
   per-detector pseudo-process [@main], which also seeds spawn edges for
   processes spawned from setup code. *)

type config = {
  capture_stacks : bool;  (* record both access backtraces per finding *)
  stack_depth : int;
  max_reports_per_loc : int;  (* cap duplicate findings per location *)
  suppressions : (string * string) list;
      (* (rule, location prefix): known benign races, see DESIGN.md §13 *)
}

let default_config =
  {
    capture_stacks = true;
    stack_depth = 12;
    max_reports_per_loc = 4;
    suppressions = [];
  }

(* Sparse vector clock: pid -> component.  Missing entries read as 0. *)
type clock = (int, int) Hashtbl.t

type access = {
  a_pid : int;
  a_name : string;
  a_site : string;
  a_kind : [ `Read | `Write ];
  a_own : int;  (* accessor's own clock component at access time *)
  a_stack : Printexc.raw_backtrace option;
}

type loc_state = {
  mutable l_write : access option;
  mutable l_reads : access list;  (* most recent read per process *)
  mutable l_gen : int;  (* write generation *)
  mutable l_reports : int;
}

(* A read awaiting its write-back: the ingredients of the atomicity rule. *)
type pending = {
  pn_site : string;
  pn_epoch : int;
  pn_gen : int;
  pn_stack : Printexc.raw_backtrace option;
}

type proc = {
  p_id : int;
  p_name : string;
  p_clock : clock;
  mutable p_epoch : int;  (* bumped at every blocking point *)
}

type t = {
  config : config;
  report : Kite_check.Report.t;
  name : string;
  procs : (int, proc) Hashtbl.t;
  main : proc;  (* pid -1: setup / timer / interrupt context *)
  chans : (string, clock) Hashtbl.t;
  locs : (string, loc_state) Hashtbl.t;
  pend : (int * string, pending) Hashtbl.t;
  mutable cur : proc option;
  mutable next_pid : int;
  mutable free_pids : int list;
      (* pid slots of exited processes, available for reuse *)
  hw : (int, int) Hashtbl.t;
      (* per-slot high-water mark of the own component at exit *)
  ring_gens : (string, int) Hashtbl.t;
      (* attach count per ring name: reconnects build fresh rings *)
  mutable races : int;  (* error-severity findings *)
  mutable atomicity : int;  (* warning-severity findings *)
}

let clock_get c pid =
  match Hashtbl.find_opt c pid with Some n -> n | None -> 0

let own p = clock_get p.p_clock p.p_id
let tick p = Hashtbl.replace p.p_clock p.p_id (own p + 1)

let join dst src =
  Hashtbl.iter
    (fun pid n -> if n > clock_get dst pid then Hashtbl.replace dst pid n)
    src

let mk_proc pid name =
  let p = { p_id = pid; p_name = name; p_clock = Hashtbl.create 8; p_epoch = 0 } in
  tick p;  (* own component starts at 1 so a_own = 0 never occurs *)
  p

let create ?(config = default_config) ?(name = "-") report =
  {
    config;
    report;
    name;
    procs = Hashtbl.create 32;
    main = mk_proc (-1) "@main";
    chans = Hashtbl.create 64;
    locs = Hashtbl.create 256;
    pend = Hashtbl.create 64;
    cur = None;
    next_pid = 0;
    free_pids = [];
    hw = Hashtbl.create 32;
    ring_gens = Hashtbl.create 8;
    races = 0;
    atomicity = 0;
  }

let report t = t.report
let name t = t.name
let races t = t.races
let atomicity_violations t = t.atomicity

(* ------------------------------------------------------------------ *)
(* Ambient scope: which detector/process the instant belongs to.       *)
(* Set by Process's step wrapper and by Event_channel's interrupt       *)
(* delivery; a single global is enough because the DES is              *)
(* single-threaded.  When it is [None] every [scoped_*] hook is one    *)
(* ref read and a match — the disabled cost.                           *)
(* ------------------------------------------------------------------ *)

let scope : t option ref = ref None

let active () = !scope <> None

let cur t = match t.cur with Some p -> p | None -> t.main

(* ------------------------------------------------------------------ *)
(* Process lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

(* Pid slots are recycled (FastTrack-style): workloads that spawn a
   short-lived worker per request would otherwise grow every vector
   clock by one component per spawn, turning each join quadratic in the
   total process count.  A reused slot starts its own component above
   the previous holder's high-water mark, so the old holder's recorded
   accesses stay ordered before everything the new holder does — sound
   for the observed execution, because the slot only frees once its
   previous holder has actually finished; alternative interleavings are
   the schedule explorer's job. *)
let proc_register t ~name =
  let pid =
    match t.free_pids with
    | pid :: rest ->
        t.free_pids <- rest;
        pid
    | [] ->
        let pid = t.next_pid in
        t.next_pid <- pid + 1;
        pid
  in
  let p = mk_proc pid name in
  Hashtbl.replace p.p_clock pid
    (max (own p) (clock_get t.hw pid + 1));
  (* Spawn edge: the child is ordered after everything its spawner did.
     Processes spawned from setup code inherit from [@main]. *)
  let parent = cur t in
  join p.p_clock parent.p_clock;
  tick parent;
  tick p;
  Hashtbl.replace t.procs pid p;
  pid

let proc_enter t pid =
  (match Hashtbl.find_opt t.procs pid with
  | Some p -> t.cur <- Some p
  | None -> ());
  scope := Some t

let proc_leave t =
  t.cur <- None;
  scope := None

let proc_blocked t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p.p_epoch <- p.p_epoch + 1
  | None -> ()

(* Interrupt context: event-channel deliveries run engine callbacks, not
   processes.  They acquire the notify edge into [@main] so conditions
   signalled from the handler carry the sender's clock onward. *)
let irq_enter t = scope := Some t
let irq_leave _t = scope := None

(* ------------------------------------------------------------------ *)
(* Release / acquire channels                                          *)
(* ------------------------------------------------------------------ *)

let hb_release t ~chan =
  let p = cur t in
  let c =
    match Hashtbl.find_opt t.chans chan with
    | Some c -> c
    | None ->
        let c = Hashtbl.create 8 in
        Hashtbl.add t.chans chan c;
        c
  in
  join c p.p_clock;
  tick p

let hb_acquire t ~chan =
  match Hashtbl.find_opt t.chans chan with
  | Some c -> join (cur t).p_clock c
  | None -> ()

(* Join-everything-that-exited: teardown paths that only synchronize by
   time ("give the threads a beat to park") acquire the "@exit" channel
   instead, claiming exactly the accesses of processes that have already
   terminated.  Sound: a process's accesses precede its exit release,
   and an exited process can never run again. *)
let quiesce t = hb_acquire t ~chan:"@exit"

let proc_exited t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p ->
      (* Exit edge: anything that observes the termination (teardown
         barriers, live counts) may acquire "@exit". *)
      join
        (match Hashtbl.find_opt t.chans "@exit" with
        | Some c -> c
        | None ->
            let c = Hashtbl.create 8 in
            Hashtbl.add t.chans "@exit" c;
            c)
        p.p_clock;
      Hashtbl.remove t.procs pid;
      (* Free the slot for reuse; the next holder's own component starts
         above this one's high-water mark (see [proc_register]). *)
      Hashtbl.replace t.hw pid (max (clock_get t.hw pid) (own p));
      t.free_pids <- pid :: t.free_pids;
      Hashtbl.filter_map_inplace
        (fun (qid, _) pn -> if qid = pid then None else Some pn)
        t.pend
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

let suppressed t rule loc =
  List.exists
    (fun (r, prefix) -> r = rule && String.starts_with ~prefix loc)
    t.config.suppressions

let capture t =
  if t.config.capture_stacks then
    Some (Printexc.get_callstack t.config.stack_depth)
  else None

let fmt_stack label = function
  | None -> ""
  | Some bt ->
      let s = String.trim (Printexc.raw_backtrace_to_string bt) in
      if s = "" then ""
      else
        Printf.sprintf "\n  %s stack:\n    %s" label
          (String.concat "\n    " (String.split_on_char '\n' s))

let emit t severity rule ~prov message =
  Kite_check.Report.add t.report
    { Kite_check.Report.severity; subsystem = "race"; rule; provenance = prov; message }

let kind_str = function `Read -> "read" | `Write -> "write"

(* Two accesses with no happens-before path: under another schedule seed
   they can occur in either order. *)
let report_race t ls ~loc ~(first : access) ~(second : access) =
  if
    ls.l_reports < t.config.max_reports_per_loc
    && not (suppressed t "race-unordered" loc)
  then begin
    ls.l_reports <- ls.l_reports + 1;
    t.races <- t.races + 1;
    emit t Kite_check.Report.Error "race-unordered" ~prov:second.a_name
      (Printf.sprintf
         "unordered accesses to %s: %s by %s at %s is concurrent with %s by \
          %s at %s%s%s"
         loc (kind_str first.a_kind) first.a_name first.a_site
         (kind_str second.a_kind) second.a_name second.a_site
         (fmt_stack "first" first.a_stack)
         (fmt_stack "second" second.a_stack))
  end

let report_atomicity t ls ~loc ~(p : proc) ~(pn : pending) ~site ~stack =
  if ls.l_reports < t.config.max_reports_per_loc then begin
    if pn.pn_gen <> ls.l_gen then begin
      if not (suppressed t "race-lost-update" loc) then begin
        ls.l_reports <- ls.l_reports + 1;
        t.races <- t.races + 1;
        let interferer =
          match ls.l_write with
          | Some w -> Printf.sprintf "%s at %s" w.a_name w.a_site
          | None -> "another writer"
        in
        emit t Kite_check.Report.Error "race-lost-update" ~prov:p.p_name
          (Printf.sprintf
             "lost update on %s: %s read it at %s, blocked, and wrote it \
              back at %s after %s modified it in between%s%s"
             loc p.p_name pn.pn_site site interferer
             (fmt_stack "read" pn.pn_stack)
             (fmt_stack "write-back" stack))
      end
    end
    else if not (suppressed t "race-atomicity" loc) then begin
      ls.l_reports <- ls.l_reports + 1;
      t.atomicity <- t.atomicity + 1;
      emit t Kite_check.Report.Warning "race-atomicity" ~prov:p.p_name
        (Printf.sprintf
           "read-modify-write of %s spans a blocking point: %s read it at \
            %s, blocked, and wrote it at %s without re-validating%s%s"
           loc p.p_name pn.pn_site site
           (fmt_stack "read" pn.pn_stack)
           (fmt_stack "write" stack))
    end
  end

(* ------------------------------------------------------------------ *)
(* Instrumented accesses                                               *)
(* ------------------------------------------------------------------ *)

let find_loc t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls -> ls
  | None ->
      let ls = { l_write = None; l_reads = []; l_gen = 0; l_reports = 0 } in
      Hashtbl.add t.locs loc ls;
      ls

let ordered (a : access) (p : proc) =
  a.a_pid = p.p_id || a.a_own <= clock_get p.p_clock a.a_pid

let read_acc ?(arm = true) t ~loc ~site =
  let p = cur t in
  let ls = find_loc t loc in
  let stack = capture t in
  let acc =
    { a_pid = p.p_id; a_name = p.p_name; a_site = site; a_kind = `Read;
      a_own = own p; a_stack = stack }
  in
  (match ls.l_write with
  | Some w when not (ordered w p) -> report_race t ls ~loc ~first:w ~second:acc
  | _ -> ());
  ls.l_reads <- acc :: List.filter (fun a -> a.a_pid <> p.p_id) ls.l_reads;
  (* [arm] opts the read into the read-modify-write atomicity check.
     Control state (indices, journal entries, store nodes) wants it; bulk
     data locations (page payloads) do not — concurrent writers of file
     blocks are last-write-wins at the application level, and flagging
     every buffered rewrite would drown the report. *)
  if arm && p.p_id >= 0 then
    Hashtbl.replace t.pend (p.p_id, loc)
      { pn_site = site; pn_epoch = p.p_epoch; pn_gen = ls.l_gen;
        pn_stack = stack }

let write_acc t ~loc ~site =
  let p = cur t in
  let ls = find_loc t loc in
  let stack = capture t in
  let acc =
    { a_pid = p.p_id; a_name = p.p_name; a_site = site; a_kind = `Write;
      a_own = own p; a_stack = stack }
  in
  (match Hashtbl.find_opt t.pend (p.p_id, loc) with
  | Some pn when pn.pn_epoch < p.p_epoch ->
      report_atomicity t ls ~loc ~p ~pn ~site ~stack
  | _ -> ());
  Hashtbl.remove t.pend (p.p_id, loc);
  (match ls.l_write with
  | Some w when not (ordered w p) -> report_race t ls ~loc ~first:w ~second:acc
  | _ -> ());
  List.iter
    (fun r ->
      if r.a_pid <> p.p_id && not (ordered r p) then
        report_race t ls ~loc ~first:r ~second:acc)
    ls.l_reads;
  ls.l_reads <- [];
  ls.l_gen <- ls.l_gen + 1;
  ls.l_write <- Some acc

(* ------------------------------------------------------------------ *)
(* Ambient variants (modules without a detector handle)                *)
(* ------------------------------------------------------------------ *)

let scoped_release ~chan =
  match !scope with None -> () | Some t -> hb_release t ~chan

let scoped_acquire ~chan =
  match !scope with None -> () | Some t -> hb_acquire t ~chan

let scoped_read ?(arm = true) ~loc ~site () =
  match !scope with None -> () | Some t -> read_acc ~arm t ~loc ~site

let scoped_write ~loc ~site =
  match !scope with None -> () | Some t -> write_acc t ~loc ~site

let scoped_quiesce () =
  match !scope with None -> () | Some t -> quiesce t

(* ------------------------------------------------------------------ *)
(* Xenstore nodes                                                      *)
(*                                                                     *)
(* Store nodes are modelled as release/acquire channels (a write       *)
(* releases, a read acquires): frontends legitimately poll state nodes *)
(* concurrently with writers, so access-checking them would drown the  *)
(* report in benign [race-unordered] findings.  What *is* checked is   *)
(* the read-modify-write discipline, via a per-path write generation:  *)
(* read a node, block, write it back while someone else changed it —   *)
(* that is a lost update that a transaction would have caught.  A      *)
(* conflicting [tx_commit] never applies its writes, so transactional  *)
(* users are never flagged: transactions are the sanctioned pattern.   *)
(* ------------------------------------------------------------------ *)

let xs_read t ~path =
  let p = cur t in
  let loc = "xs:" ^ path in
  hb_acquire t ~chan:loc;
  if p.p_id >= 0 then begin
    let ls = find_loc t loc in
    Hashtbl.replace t.pend (p.p_id, loc)
      { pn_site = "Xenstore.read"; pn_epoch = p.p_epoch; pn_gen = ls.l_gen;
        pn_stack = capture t }
  end

let xs_write t ~path =
  let p = cur t in
  let loc = "xs:" ^ path in
  let ls = find_loc t loc in
  (match Hashtbl.find_opt t.pend (p.p_id, loc) with
  | Some pn when pn.pn_epoch < p.p_epoch && pn.pn_gen <> ls.l_gen ->
      (* Only the interfered case is an error for store nodes: a scalar
         node whose generation did not move cannot have changed value. *)
      report_atomicity t ls ~loc ~p ~pn ~site:"Xenstore.write"
        ~stack:(capture t)
  | _ -> ());
  Hashtbl.remove t.pend (p.p_id, loc);
  ls.l_gen <- ls.l_gen + 1;
  ls.l_write <-
    Some
      { a_pid = p.p_id; a_name = p.p_name; a_site = "Xenstore.write";
        a_kind = `Write; a_own = own p; a_stack = None };
  hb_release t ~chan:loc

(* ------------------------------------------------------------------ *)
(* Shared rings                                                        *)
(*                                                                     *)
(* Producer side: write the slot, then publish (release the side's     *)
(* channel).  Consumer side: acquire the channel, and treat a          *)
(* successful take as a write (read + clear) of the slot.  The         *)
(* consumer cursor back-channel models the producer's read of the      *)
(* peer's consumer index when checking for ring-full: that is the edge *)
(* that makes slot reuse after wrap-around well-ordered.               *)
(*                                                                     *)
(* The shared producer/consumer *indices* are modelled purely as       *)
(* release/acquire channels, never as access-checked locations: in     *)
(* Xen's C ring protocol the consumer legitimately polls prod_idx      *)
(* while the producer updates it (a single word, ordered by barriers   *)
(* that the publish/take helpers bake in), so access-checking the      *)
(* index would flag every poll.  What the detector checks is the slot  *)
(* payloads: a slot written after publish, or republished before the   *)
(* consumer's cursor release made reuse safe, shows up as an           *)
(* unordered slot access.  The notification thresholds                 *)
(* (req_event/rsp_event) are likewise *not* instrumented: they are     *)
(* racy by design, and the lost-wakeup final-check dance is what makes *)
(* the race benign.                                                    *)
(* ------------------------------------------------------------------ *)

type ring = {
  rr : t;
  req_chan : string;
  rsp_chan : string;
  req_cons_chan : string;
  rsp_cons_chan : string;
  req_slots : string array;
  rsp_slots : string array;
}

let ring t ~name ~size =
  (* A reconnecting frontend builds a fresh ring under the same device
     name; a generation suffix keeps the new ring's slots and channels
     distinct from the dead ring's, whose slots it never aliases. *)
  let gen =
    match Hashtbl.find_opt t.ring_gens name with
    | Some g -> g + 1
    | None -> 0
  in
  Hashtbl.replace t.ring_gens name gen;
  let name = if gen = 0 then name else Printf.sprintf "%s~%d" name gen in
  {
    rr = t;
    req_chan = Printf.sprintf "ring:%s.req" name;
    rsp_chan = Printf.sprintf "ring:%s.rsp" name;
    req_cons_chan = Printf.sprintf "ring:%s.req_cons" name;
    rsp_cons_chan = Printf.sprintf "ring:%s.rsp_cons" name;
    req_slots =
      Array.init size (fun i -> Printf.sprintf "ring:%s.req[%d]" name i);
    rsp_slots =
      Array.init size (fun i -> Printf.sprintf "ring:%s.rsp[%d]" name i);
  }

let side_chan rr = function `Req -> rr.req_chan | `Rsp -> rr.rsp_chan

let cons_chan rr = function
  | `Req -> rr.req_cons_chan
  | `Rsp -> rr.rsp_cons_chan

let slot_loc rr side i =
  match side with `Req -> rr.req_slots.(i) | `Rsp -> rr.rsp_slots.(i)

let ring_push rr side ~slot =
  (* The ring-full guard reads the peer's consumer cursor. *)
  hb_acquire rr.rr ~chan:(cons_chan rr side);
  write_acc rr.rr ~loc:(slot_loc rr side slot) ~site:"Ring.push"

let ring_publish rr side = hb_release rr.rr ~chan:(side_chan rr side)

let ring_take rr side ~got ~slot =
  hb_acquire rr.rr ~chan:(side_chan rr side);
  if got then begin
    write_acc rr.rr ~loc:(slot_loc rr side slot) ~site:"Ring.take";
    (* Advancing the consumer cursor is what frees the slot for reuse. *)
    hb_release rr.rr ~chan:(cons_chan rr side)
  end

(* ------------------------------------------------------------------ *)
(* Run-wide sink                                                       *)
(* ------------------------------------------------------------------ *)

type sink = {
  s_config : config;
  s_report : Kite_check.Report.t;
  mutable s_members : t list;
}

let sink ?(config = default_config) ?report () =
  let s_report =
    match report with Some r -> r | None -> Kite_check.Report.create ()
  in
  { s_config = config; s_report; s_members = [] }

let create_in s ~name =
  let t = create ~config:s.s_config ~name s.s_report in
  s.s_members <- t :: s.s_members;
  t

let members s = List.rev s.s_members
let sink_report s = s.s_report

let default_ref : sink option ref = ref None
let set_default s = default_ref := s
let default () = !default_ref
