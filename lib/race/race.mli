(** Happens-before race and atomicity-violation detection.

    The simulation is single-threaded, so the detector does not look for
    data races in the memory-model sense: it finds *logical* concurrency
    bugs between cooperative processes.  Each process carries a sparse
    vector clock; synchronization primitives ([Mailbox] send→recv,
    [Condition] signal→wake, [Event_channel] notify→deliver, ring
    publish→take, xenstore write→read, [Process.spawn]) contribute
    happens-before edges as release/acquire channels.  Instrumented
    accesses to shared hot state are checked against the location's
    access history:

    - ["race-unordered"] (error): two accesses, at least one a write,
      with no happens-before path between them — a different schedule
      seed can execute them in either order;
    - ["race-lost-update"] (error): a process read a location, blocked,
      and wrote it back after another process modified it in between;
    - ["race-atomicity"] (warning): a read-modify-write spanning a
      blocking point without re-validation, even though nothing happened
      to interfere this run.

    Findings land in a shared {!Kite_check.Report}, with both access
    sites and (by default) both captured backtraces.

    Like the checker/tracer/fault layers, everything is zero-cost when
    disabled: modules holding a detector reference pay one option match,
    and the ambient [scoped_*] hooks used by [Condition]/[Mailbox]/
    [Page] pay one global ref read. *)

type config = {
  capture_stacks : bool;  (** record both access backtraces per finding *)
  stack_depth : int;
  max_reports_per_loc : int;
      (** cap findings per location so hot loops don't flood the report *)
  suppressions : (string * string) list;
      (** [(rule, location-prefix)] pairs for known benign races;
          see DESIGN.md §13 *)
}

val default_config : config

type t
(** One detector instance, normally one per simulated machine. *)

val create : ?config:config -> ?name:string -> Kite_check.Report.t -> t

val report : t -> Kite_check.Report.t
val name : t -> string

val races : t -> int
(** Error-severity findings recorded so far. *)

val atomicity_violations : t -> int
(** Warning-severity findings recorded so far. *)

(** {1 Process lifecycle} — called by [Process]'s instrumentation. *)

val proc_register : t -> name:string -> int
(** Register a process and return its pid.  The child's clock inherits
    the spawner's (the spawn edge); registration from outside any
    process inherits from the setup pseudo-process [@main]. *)

val proc_enter : t -> int -> unit
(** The process starts (or resumes) a step: subsequent accesses and
    edges are attributed to it. *)

val proc_leave : t -> unit

val proc_blocked : t -> int -> unit
(** The process hit a blocking point; bumps its atomicity epoch. *)

val proc_exited : t -> int -> unit

val irq_enter : t -> unit
(** Enter interrupt context (event-channel delivery): accesses attribute
    to [@main] but ambient hooks become live, so conditions signalled
    from the handler propagate the sender's clock. *)

val irq_leave : t -> unit

(** {1 Happens-before edges} *)

val hb_release : t -> chan:string -> unit
(** Publish the current process's clock into the named channel and tick. *)

val hb_acquire : t -> chan:string -> unit
(** Join the named channel's clock into the current process's. *)

val quiesce : t -> unit
(** Acquire the exit edges of every process that has already
    terminated.  Teardown paths that synchronize by waiting out the
    clock (rather than joining) call this to claim the ordering they
    rely on; it never orders against a process that is still live. *)

(** {1 Instrumented accesses} *)

val read_acc : ?arm:bool -> t -> loc:string -> site:string -> unit
(** Record a read of [loc].  [arm] (default [true]) additionally arms
    the read-modify-write atomicity check: a later write of [loc] by the
    same process across a blocking point reports ["race-atomicity"] (or
    ["race-lost-update"] if someone else wrote in between).  Pass
    [~arm:false] for bulk data locations (page payloads) where
    concurrent rewrite is last-write-wins application semantics. *)

val write_acc : t -> loc:string -> site:string -> unit

(** {1 Ambient variants}

    For modules that have no detector handle ([Condition], [Mailbox],
    [Page]): they act on whichever detector currently has a process (or
    interrupt) in scope, and are no-ops otherwise.  [active] lets hot
    paths skip building location strings when no detector is live. *)

val active : unit -> bool
val scoped_release : chan:string -> unit
val scoped_acquire : chan:string -> unit
val scoped_read : ?arm:bool -> loc:string -> site:string -> unit -> unit
val scoped_write : loc:string -> site:string -> unit
val scoped_quiesce : unit -> unit

(** {1 Xenstore nodes}

    Store nodes are modelled as release/acquire channels — frontends
    poll state nodes concurrently with writers by design — plus a
    per-path write-generation check that turns read → block → write-back
    into ["race-lost-update"] when the node changed in between.  A
    conflicting transaction commit never applies its writes, so
    transactional users are never flagged. *)

val xs_read : t -> path:string -> unit
val xs_write : t -> path:string -> unit

(** {1 Shared rings}

    Per-side release/acquire channels for publish→take, per-slot access
    locations, and a consumer-cursor back-channel modelling the
    producer's ring-full check.  Re-attaching a ring under a name the
    detector has already seen (a reconnect cycle) gets a fresh
    generation of locations.  The
    notification thresholds are deliberately not instrumented: they are
    racy by design, with the final-check dance making the race benign. *)

type ring

val ring : t -> name:string -> size:int -> ring
val ring_push : ring -> [ `Req | `Rsp ] -> slot:int -> unit
val ring_publish : ring -> [ `Req | `Rsp ] -> unit
val ring_take : ring -> [ `Req | `Rsp ] -> got:bool -> slot:int -> unit

(** {1 Run-wide sink}

    Mirrors [Kite_trace.Trace]: scenario helpers consult the default
    sink and create one member detector per simulated machine, all
    feeding one report. *)

type sink

val sink : ?config:config -> ?report:Kite_check.Report.t -> unit -> sink
val create_in : sink -> name:string -> t
val members : sink -> t list
val sink_report : sink -> Kite_check.Report.t

val set_default : sink option -> unit
(** Install (or clear) the run-wide default sink consulted by
    [Scenario.attach_race]. *)

val default : unit -> sink option
