(** Seeded link impairments: loss, reordering, and extra delay injected
    at the cable between two NICs.

    The NIC model is ideal — the only losses it produces are transmit
    queue overflows.  Real deployments also see random frame loss, jitter
    and occasional reordering, and the swarm harness needs those to probe
    how each Kite flavor's TCP stack behaves under degraded links.  An
    [Impair.t] sits on one direction of a cable and draws, from its own
    private RNG stream, a fate for every frame the transmitter hands it.

    Determinism contract: the fate sequence is a pure function of the
    seed and the frame sequence — the impairment RNG is never shared
    with any other component, so enabling impairments cannot perturb
    arrival times or any other seeded stream. *)

type spec = {
  loss : float;  (** probability a frame is silently dropped *)
  reorder : float;
      (** probability a frame is held back and released just after the
          next frame on the same direction (a one-frame swap) *)
  delay : Kite_sim.Time.span;  (** fixed extra one-way delay *)
  jitter : Kite_sim.Time.span;  (** extra delay uniform in [0, jitter) *)
}

val none : spec
(** All-zero spec: a [t] built from it delivers every frame unmodified. *)

val spec_of_string : string -> (spec, string) result
(** Parse a comma-separated spec, e.g.
    ["loss=0.01,reorder=0.005,delay=200us,jitter=50us"].  Durations
    accept [ns]/[us]/[ms]/[s] suffixes; omitted fields default to zero. *)

val spec_to_string : spec -> string

type t

val create : ?seed:int -> spec -> t
(** Default [seed] 1. *)

val spec : t -> spec

type verdict =
  | Deliver of Kite_sim.Time.span  (** deliver with this extra delay *)
  | Hold  (** hold the frame; release it right after the next one *)
  | Drop  (** silently discard *)

val frame : t -> verdict
(** Draw the fate of the next frame.  Updates the counters below.
    Never returns [Hold] while a previous hold is outstanding. *)

val release : t -> unit
(** Tell the impairment that the held frame has been put back on the
    wire (the NIC does this when it delivers the following frame). *)

val dropped : t -> int
val reordered : t -> int
val delivered : t -> int
