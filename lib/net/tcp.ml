open Kite_sim

exception Connection_refused of string
exception Connection_closed of string

let mss = 1460
let rcv_window = 256 * 1024
let sndbuf_max = 512 * 1024
let rto = Time.ms 10
let connect_timeout = Time.sec 5

(* Growable byte FIFO. *)
module Bytebuf = struct
  type t = { mutable chunks : Bytes.t list;  (* reversed *) mutable len : int }

  let create () = { chunks = []; len = 0 }
  let length b = b.len

  let append b data =
    if Bytes.length data > 0 then begin
      b.chunks <- data :: b.chunks;
      b.len <- b.len + Bytes.length data
    end

  (* Remove and return the first [n] bytes (n <= len). *)
  let take b n =
    if n > b.len then invalid_arg "Bytebuf.take";
    let out = Bytes.create n in
    let rec go fifo filled =
      if filled = n then fifo
      else
        match fifo with
        | [] -> assert false
        | chunk :: rest ->
            let want = n - filled in
            let have = Bytes.length chunk in
            if have <= want then begin
              Bytes.blit chunk 0 out filled have;
              go rest (filled + have)
            end
            else begin
              Bytes.blit chunk 0 out filled want;
              Bytes.sub chunk want (have - want) :: rest
            end
    in
    let fifo = go (List.rev b.chunks) 0 in
    b.chunks <- List.rev fifo;
    b.len <- b.len - n;
    out

  (* Copy without removing: bytes [0, n) of the FIFO. *)
  let peek b n =
    if n > b.len then invalid_arg "Bytebuf.peek";
    let out = Bytes.create n in
    let rec go fifo filled =
      if filled < n then
        match fifo with
        | [] -> assert false
        | chunk :: rest ->
            let take_now = min (n - filled) (Bytes.length chunk) in
            Bytes.blit chunk 0 out filled take_now;
            go rest (filled + take_now)
    in
    go (List.rev b.chunks) 0;
    out
end

type conn_state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait  (* we sent FIN first *)
  | Close_wait  (* peer sent FIN first *)
  | Last_ack  (* peer closed, then we sent FIN *)
  | Closed

type conn = {
  tcp : t;
  local_port : int;
  remote_ip : Ipv4addr.t;
  remote_port : int;
  iss : int;
  mutable state : conn_state;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable peer_window : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  unacked : Bytebuf.t;  (* sent, not yet acknowledged; starts at snd_una *)
  sndbuf : Bytebuf.t;  (* queued, not yet sent *)
  rcvbuf : Bytebuf.t;
  mutable rcv_fin : bool;  (* peer FIN consumed *)
  mutable fin_requested : bool;
  mutable fin_sent : bool;
  tx_cond : Condition.t;  (* sender work / buffer space *)
  rx_cond : Condition.t;  (* received data / EOF *)
  hs_cond : Condition.t;  (* handshake completion *)
  mutable retx_timer : Engine.handle option;
  mutable retx_gen : int;
  mutable dup_acks : int;
}

and listener = { lport : int; backlog : conn Mailbox.t }

and t = {
  stack : Stack.t;
  conns : (int * Ipv4addr.t * int, conn) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_iss : int;
  mutable next_ephemeral : int;
  mutable retransmissions : int;
}

let retransmissions t = t.retransmissions

let state_name c =
  match c.state with
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait -> "FIN_WAIT"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closed -> "CLOSED"

let is_open c = c.state <> Closed

let key c = (c.local_port, c.remote_ip, c.remote_port)

let seq_sub a b =
  (* Distance a - b for close sequence numbers. *)
  let d = (a - b) land 0xffffffff in
  if d >= 1 lsl 31 then d - (1 lsl 32) else d

let send_segment c ?(payload = Bytes.empty) flags ~seq =
  let hdr =
    {
      Tcp_wire.src_port = c.local_port;
      dst_port = c.remote_port;
      seq;
      ack_num = c.rcv_nxt;
      flags;
      window = rcv_window;
    }
  in
  Stack.send_ip c.tcp.stack ~dst:c.remote_ip ~protocol:Ipv4.Tcp
    (Tcp_wire.encode hdr ~src:(Stack.ip c.tcp.stack) ~dst:c.remote_ip ~payload)

let ack_flags = { Tcp_wire.no_flags with ack = true }

let send_ack c = send_segment c ack_flags ~seq:c.snd_nxt

(* ------------------------------------------------------------------ *)
(* Retransmission                                                      *)
(* ------------------------------------------------------------------ *)

let in_flight c = seq_sub c.snd_nxt c.snd_una

let cancel_timer c =
  c.retx_gen <- c.retx_gen + 1;
  match c.retx_timer with
  | Some h ->
      Engine.cancel h;
      c.retx_timer <- None
  | None -> ()

let rec arm_timer c =
  cancel_timer c;
  let sched = Stack.sched c.tcp.stack in
  let engine = Process.engine sched in
  (* The timer fires in event context; the retransmit itself runs in a
     short-lived process so it may block (e.g. on a cold ARP cache). *)
  let gen = c.retx_gen in
  c.retx_timer <-
    Some
      (Engine.schedule_after engine rto (fun () ->
           Process.spawn sched ~name:"tcp-rto" (fun () -> on_rto c gen)))

and on_rto c gen =
  (* A stale timer (cancelled or re-armed since it was scheduled) must not
     trigger a spurious retransmission. *)
  if gen = c.retx_gen && c.state <> Closed && in_flight c > 0 then begin
    c.retx_timer <- None;
    c.tcp.retransmissions <- c.tcp.retransmissions + 1;
    (* Multiplicative decrease, then go-back-N from snd_una. *)
    c.ssthresh <- max (2 * mss) (c.cwnd / 2);
    c.cwnd <- mss;
    (match c.state with
    | Syn_sent ->
        send_segment c { Tcp_wire.no_flags with syn = true } ~seq:c.iss
    | Syn_received ->
        send_segment c
          { Tcp_wire.no_flags with syn = true; ack = true }
          ~seq:c.iss
    | Established | Fin_wait | Close_wait | Last_ack ->
        let data_len = Bytebuf.length c.unacked in
        let resend = min data_len (min c.cwnd mss) in
        if resend > 0 then begin
          let data = Bytebuf.peek c.unacked resend in
          send_segment c
            { ack_flags with Tcp_wire.psh = true }
            ~seq:c.snd_una ~payload:data
        end
        else if c.fin_sent then
          send_segment c
            { ack_flags with Tcp_wire.fin = true }
            ~seq:(Tcp_wire.seq_add c.snd_nxt (-1))
    | Closed -> ());
    arm_timer c
  end

(* ------------------------------------------------------------------ *)
(* Sender process                                                      *)
(* ------------------------------------------------------------------ *)

let effective_window c = min c.peer_window (max c.cwnd mss)

let can_transmit_data c =
  (match c.state with
  | Established | Close_wait -> true
  | Syn_sent | Syn_received | Fin_wait | Last_ack | Closed -> false)
  && Bytebuf.length c.sndbuf > 0
  && in_flight c < effective_window c

let should_send_fin c =
  c.fin_requested && (not c.fin_sent)
  && Bytebuf.length c.sndbuf = 0
  &&
  match c.state with
  | Established | Close_wait -> true
  | Syn_sent | Syn_received | Fin_wait | Last_ack | Closed -> false

let sender c () =
  let rec loop () =
    if c.state = Closed then ()
    else if can_transmit_data c then begin
      let window_room = effective_window c - in_flight c in
      let seg = min (min mss (Bytebuf.length c.sndbuf)) window_room in
      let data = Bytebuf.take c.sndbuf seg in
      Bytebuf.append c.unacked data;
      let seq = c.snd_nxt in
      c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt seg;
      send_segment c { ack_flags with Tcp_wire.psh = true } ~seq ~payload:data;
      if c.retx_timer = None then arm_timer c;
      (* Space may have opened for blocked writers. *)
      Condition.broadcast c.tx_cond;
      Process.yield ();
      loop ()
    end
    else if should_send_fin c then begin
      let seq = c.snd_nxt in
      c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt 1;
      c.fin_sent <- true;
      c.state <- (if c.state = Close_wait then Last_ack else Fin_wait);
      send_segment c { ack_flags with Tcp_wire.fin = true } ~seq;
      if c.retx_timer = None then arm_timer c;
      loop ()
    end
    else begin
      Condition.wait c.tx_cond;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection construction                                             *)
(* ------------------------------------------------------------------ *)

let make_conn tcp ~local_port ~remote_ip ~remote_port ~state ~iss ~rcv_nxt =
  let c =
    {
      tcp;
      local_port;
      remote_ip;
      remote_port;
      iss;
      state;
      snd_una = iss;
      snd_nxt = iss;
      rcv_nxt;
      peer_window = rcv_window;
      cwnd = 10 * mss;
      ssthresh = 64 * 1024;
      unacked = Bytebuf.create ();
      sndbuf = Bytebuf.create ();
      rcvbuf = Bytebuf.create ();
      rcv_fin = false;
      fin_requested = false;
      fin_sent = false;
      tx_cond = Condition.create ();
      rx_cond = Condition.create ();
      hs_cond = Condition.create ();
      retx_timer = None;
      retx_gen = 0;
      dup_acks = 0;
    }
  in
  Hashtbl.replace tcp.conns (local_port, remote_ip, remote_port) c;
  Process.spawn (Stack.sched tcp.stack) ~daemon:true
    ~name:
      (Printf.sprintf "%s-tcp-%d-%s:%d" (Stack.name tcp.stack) local_port
         (Ipv4addr.to_string remote_ip) remote_port)
    (sender c);
  c

let teardown c =
  c.state <- Closed;
  cancel_timer c;
  Hashtbl.remove c.tcp.conns (key c);
  Condition.broadcast c.tx_cond;
  Condition.broadcast c.rx_cond;
  Condition.broadcast c.hs_cond

(* ------------------------------------------------------------------ *)
(* Segment processing                                                  *)
(* ------------------------------------------------------------------ *)

(* Fast retransmit: three duplicate ACKs resend the lost segment without
   waiting for the RTO, with a gentler (halving) congestion response. *)
let fast_retransmit c =
  c.tcp.retransmissions <- c.tcp.retransmissions + 1;
  c.ssthresh <- max (2 * mss) (c.cwnd / 2);
  c.cwnd <- c.ssthresh;
  let resend = min (Bytebuf.length c.unacked) mss in
  if resend > 0 then begin
    let data = Bytebuf.peek c.unacked resend in
    send_segment c { ack_flags with Tcp_wire.psh = true } ~seq:c.snd_una
      ~payload:data;
    arm_timer c
  end

let process_ack c ~pure ack =
  (* Only pure ACKs (no payload, no SYN/FIN) count towards the duplicate
     threshold: data segments from the peer naturally repeat the same ack
     number while our pipeline is idle in that direction. *)
  if pure && ack = c.snd_una && in_flight c > 0 then begin
    c.dup_acks <- c.dup_acks + 1;
    if c.dup_acks = 3 then fast_retransmit c
  end;
  if Tcp_wire.seq_lt c.snd_una ack && Tcp_wire.seq_leq ack c.snd_nxt then begin
    c.dup_acks <- 0;
    let acked = seq_sub ack c.snd_una in
    (* SYN and FIN occupy sequence space but no buffer bytes. *)
    let buffered = Bytebuf.length c.unacked in
    let from_buffer = min acked buffered in
    if from_buffer > 0 then ignore (Bytebuf.take c.unacked from_buffer);
    c.snd_una <- ack;
    (* Congestion window growth. *)
    if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min acked mss
    else c.cwnd <- c.cwnd + max 1 (mss * mss / c.cwnd);
    if in_flight c = 0 then cancel_timer c else arm_timer c;
    Condition.broadcast c.tx_cond;
    if c.fin_sent && ack = c.snd_nxt then begin
      match c.state with
      | Last_ack -> teardown c
      | Fin_wait when c.rcv_fin -> teardown c
      | _ -> ()
    end
  end

let handle_segment c (h : Tcp_wire.header) payload =
  c.peer_window <- max h.Tcp_wire.window mss;
  if h.Tcp_wire.flags.Tcp_wire.rst then teardown c
  else begin
    (* Handshake transitions. *)
    (match c.state with
    | Syn_sent
      when h.Tcp_wire.flags.Tcp_wire.syn && h.Tcp_wire.flags.Tcp_wire.ack
           && h.Tcp_wire.ack_num = Tcp_wire.seq_add c.iss 1 ->
        c.rcv_nxt <- Tcp_wire.seq_add h.Tcp_wire.seq 1;
        c.snd_una <- h.Tcp_wire.ack_num;
        c.state <- Established;
        cancel_timer c;
        send_ack c;
        Condition.broadcast c.hs_cond;
        Condition.broadcast c.tx_cond
    | Syn_received
      when h.Tcp_wire.flags.Tcp_wire.ack
           && h.Tcp_wire.ack_num = Tcp_wire.seq_add c.iss 1 ->
        c.state <- Established;
        cancel_timer c;
        Condition.broadcast c.hs_cond;
        Condition.broadcast c.tx_cond
    | _ -> ());
    let len = Bytes.length payload in
    if h.Tcp_wire.flags.Tcp_wire.ack && c.state <> Syn_sent then begin
      let pure =
        len = 0
        && (not h.Tcp_wire.flags.Tcp_wire.syn)
        && not h.Tcp_wire.flags.Tcp_wire.fin
      in
      process_ack c ~pure h.Tcp_wire.ack_num
    end;
    (* In-order data. *)
    if len > 0 && c.state <> Syn_sent && c.state <> Syn_received then begin
      if h.Tcp_wire.seq = c.rcv_nxt then begin
        Bytebuf.append c.rcvbuf payload;
        c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt len;
        Condition.broadcast c.rx_cond;
        send_ack c
      end
      else
        (* Out of order (post-loss): dup-ACK so the peer learns rcv_nxt. *)
        send_ack c
    end;
    (* FIN: only when it is the next expected sequence number. *)
    if
      h.Tcp_wire.flags.Tcp_wire.fin
      && Tcp_wire.seq_add h.Tcp_wire.seq len = c.rcv_nxt
      && not c.rcv_fin
    then begin
      c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt 1;
      c.rcv_fin <- true;
      Condition.broadcast c.rx_cond;
      send_ack c;
      match c.state with
      | Established -> c.state <- Close_wait
      | Fin_wait -> if c.fin_sent && c.snd_una = c.snd_nxt then teardown c
      | Syn_sent | Syn_received | Close_wait | Last_ack | Closed -> ()
    end
  end

let send_rst t ~(ih : Ipv4.header) ~(h : Tcp_wire.header) ~payload_len =
  let rst =
    {
      Tcp_wire.src_port = h.Tcp_wire.dst_port;
      dst_port = h.Tcp_wire.src_port;
      seq = h.Tcp_wire.ack_num;
      ack_num = Tcp_wire.seq_add h.Tcp_wire.seq (payload_len + 1);
      flags = { Tcp_wire.no_flags with rst = true; ack = true };
      window = 0;
    }
  in
  Stack.send_ip t.stack ~dst:ih.Ipv4.src ~protocol:Ipv4.Tcp
    (Tcp_wire.encode rst ~src:(Stack.ip t.stack) ~dst:ih.Ipv4.src
       ~payload:Bytes.empty)

let handle_ip t (ih : Ipv4.header) body =
  match Tcp_wire.decode body ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst with
  | None -> ()
  | Some (h, payload) -> (
      let k = (h.Tcp_wire.dst_port, ih.Ipv4.src, h.Tcp_wire.src_port) in
      match Hashtbl.find_opt t.conns k with
      | Some c -> handle_segment c h payload
      | None -> (
          match Hashtbl.find_opt t.listeners h.Tcp_wire.dst_port with
          | Some l
            when h.Tcp_wire.flags.Tcp_wire.syn
                 && not h.Tcp_wire.flags.Tcp_wire.ack ->
              let iss = t.next_iss in
              t.next_iss <- t.next_iss + 64000;
              let c =
                make_conn t ~local_port:h.Tcp_wire.dst_port
                  ~remote_ip:ih.Ipv4.src ~remote_port:h.Tcp_wire.src_port
                  ~state:Syn_received ~iss
                  ~rcv_nxt:(Tcp_wire.seq_add h.Tcp_wire.seq 1)
              in
              c.peer_window <- max h.Tcp_wire.window mss;
              c.snd_nxt <- Tcp_wire.seq_add iss 1;
              send_segment c
                { Tcp_wire.no_flags with syn = true; ack = true }
                ~seq:iss;
              arm_timer c;
              Mailbox.send l.backlog c
          | Some _ | None ->
              if not h.Tcp_wire.flags.Tcp_wire.rst then
                send_rst t ~ih ~h ~payload_len:(Bytes.length payload)))

let attach stack =
  let t =
    {
      stack;
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 8;
      next_iss = 100_000;
      next_ephemeral = 32768;
      retransmissions = 0;
    }
  in
  Stack.set_tcp_handler stack (handle_ip t);
  t

(* ------------------------------------------------------------------ *)
(* User API                                                            *)
(* ------------------------------------------------------------------ *)

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d in use" port);
  let l = { lport = port; backlog = Mailbox.create () } in
  Hashtbl.add t.listeners port l;
  l

let accept l = Mailbox.recv l.backlog
let accept_timeout l span = Mailbox.recv_timeout l.backlog span

let connect t ~dst ~port =
  let local_port = t.next_ephemeral in
  t.next_ephemeral <-
    (if t.next_ephemeral >= 60999 then 32768 else t.next_ephemeral + 1);
  let iss = t.next_iss in
  t.next_iss <- t.next_iss + 64000;
  let c =
    make_conn t ~local_port ~remote_ip:dst ~remote_port:port ~state:Syn_sent
      ~iss ~rcv_nxt:0
  in
  c.snd_nxt <- Tcp_wire.seq_add iss 1;
  send_segment c { Tcp_wire.no_flags with syn = true } ~seq:iss;
  arm_timer c;
  let deadline_hit = ref false in
  let rec wait_established budget =
    if c.state = Established then ()
    else if c.state = Closed then
      raise
        (Connection_refused
           (Printf.sprintf "connection to %s:%d refused"
              (Ipv4addr.to_string dst) port))
    else if budget <= 0 then deadline_hit := true
    else
      match Condition.timed_wait c.hs_cond budget with
      | `Signaled -> wait_established budget
      | `Timeout -> deadline_hit := true
  in
  wait_established connect_timeout;
  if !deadline_hit && c.state <> Established then begin
    teardown c;
    raise
      (Connection_refused
         (Printf.sprintf "connection to %s:%d timed out"
            (Ipv4addr.to_string dst) port))
  end;
  c

let send c data =
  if c.fin_requested || not (is_open c) then
    raise (Connection_closed "Tcp.send on closed connection");
  Bytebuf.append c.sndbuf (Bytes.copy data);
  Condition.broadcast c.tx_cond;
  (* Backpressure: block while the buffer is overfull. *)
  while Bytebuf.length c.sndbuf > sndbuf_max && is_open c do
    Condition.wait c.tx_cond
  done;
  if not (is_open c) && Bytebuf.length c.sndbuf > 0 then
    raise (Connection_closed "connection reset while sending")

let rec recv c ~max =
  let available = Bytebuf.length c.rcvbuf in
  if available > 0 then Some (Bytebuf.take c.rcvbuf (min max available))
  else if c.rcv_fin || c.state = Closed then None
  else begin
    Condition.wait c.rx_cond;
    recv c ~max
  end

let recv_exact c ~len =
  let out = Bytes.create len in
  let rec fill off =
    if off = len then Some out
    else
      match recv c ~max:(len - off) with
      | None -> None
      | Some chunk ->
          Bytes.blit chunk 0 out off (Bytes.length chunk);
          fill (off + Bytes.length chunk)
  in
  fill 0

let close c =
  if (not c.fin_requested) && c.state <> Closed then begin
    c.fin_requested <- true;
    Condition.broadcast c.tx_cond
  end
