open Kite_sim

exception Network_unreachable of string
exception Host_unreachable of string

type udp_socket = {
  port : int;
  incoming : (Ipv4addr.t * int * Bytes.t) Mailbox.t;
}

(* A partially reassembled datagram: fragments received so far, and the
   total length once the final (MF=0) fragment has arrived. *)
type reasm = {
  mutable frags : (int * Bytes.t) list;
  mutable total : int option;
}

type ping_waiter = {
  id : int;
  seq : int;
  mutable reply_at : Time.t option;
  cond : Condition.t;
}

type t = {
  sched : Process.sched;
  name : string;
  dev : Netdev.t;
  mac : Macaddr.t;
  mutable ip : Ipv4addr.t;
  netmask : Ipv4addr.t;
  gateway : Ipv4addr.t option;
  rx_cost : Time.span;
  rxq : Bytes.t Mailbox.t;
  arp_cache : (Ipv4addr.t, Macaddr.t) Hashtbl.t;
  arp_waiters : (Ipv4addr.t, Condition.t) Hashtbl.t;
  udp_socks : (int, udp_socket) Hashtbl.t;
  mutable pings : ping_waiter list;
  mutable tcp_handler : (Ipv4.header -> Bytes.t -> unit) option;
  (* Reassembly buffers keyed by (source, datagram id). *)
  reassembly : (Ipv4addr.t * int, reasm) Hashtbl.t;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable next_ping_id : int;
  mutable next_ip_id : int;
}

let sched t = t.sched
let name t = t.name
let mac t = t.mac
let ip t = t.ip
let set_ip t ip = t.ip <- ip
let dev t = t.dev
let mtu t = Netdev.mtu t.dev
let arp_cache_size t = Hashtbl.length t.arp_cache
let rx_packets t = t.rx_packets
let tx_packets t = t.tx_packets
let set_tcp_handler t f = t.tcp_handler <- Some f

let emit t ~dst_mac ~ethertype payload =
  t.tx_packets <- t.tx_packets + 1;
  Netdev.transmit t.dev
    (Ethernet.encode
       { Ethernet.dst = dst_mac; src = t.mac; ethertype }
       ~payload)

(* ------------------------------------------------------------------ *)
(* ARP                                                                 *)
(* ------------------------------------------------------------------ *)

let arp_learn t ip mac =
  if not (Ipv4addr.equal ip Ipv4addr.any) then begin
    Hashtbl.replace t.arp_cache ip mac;
    match Hashtbl.find_opt t.arp_waiters ip with
    | Some c -> Condition.broadcast c
    | None -> ()
  end

let send_arp_request t target_ip =
  let pkt = Arp.request ~sender_mac:t.mac ~sender_ip:t.ip ~target_ip in
  emit t ~dst_mac:Macaddr.broadcast ~ethertype:Ethernet.Arp (Arp.encode pkt)

let resolve t dst =
  match Hashtbl.find_opt t.arp_cache dst with
  | Some mac -> mac
  | None ->
      let cond =
        match Hashtbl.find_opt t.arp_waiters dst with
        | Some c -> c
        | None ->
            let c = Condition.create () in
            Hashtbl.add t.arp_waiters dst c;
            c
      in
      let rec attempt n =
        if n = 0 then
          raise
            (Host_unreachable
               (Printf.sprintf "%s: no ARP reply from %s" t.name
                  (Ipv4addr.to_string dst)))
        else begin
          send_arp_request t dst;
          match Condition.timed_wait cond (Time.sec 1) with
          | `Signaled | `Timeout -> (
              match Hashtbl.find_opt t.arp_cache dst with
              | Some mac -> mac
              | None -> attempt (n - 1))
        end
      in
      attempt 3

(* ------------------------------------------------------------------ *)
(* Transmit paths                                                      *)
(* ------------------------------------------------------------------ *)

let next_hop t dst =
  if Ipv4addr.same_subnet dst t.ip ~netmask:t.netmask then dst
  else
    match t.gateway with
    | Some gw -> gw
    | None ->
        raise
          (Network_unreachable
             (Printf.sprintf "%s: no route to %s" t.name
                (Ipv4addr.to_string dst)))

let send_ip t ~dst ~protocol payload =
  let dst_mac =
    if Ipv4addr.equal dst Ipv4addr.broadcast then Macaddr.broadcast
    else resolve t (next_hop t dst)
  in
  let base = Ipv4.make_header ~src:t.ip ~dst ~protocol ~ttl:64 in
  let max_payload = Netdev.mtu t.dev - Ipv4.header_size in
  if Bytes.length payload <= max_payload then
    emit t ~dst_mac ~ethertype:Ethernet.Ipv4 (Ipv4.encode base ~payload)
  else begin
    (* Fragment: all pieces but the last carry an 8-byte-aligned payload
       and the MF flag; all share a fresh identification. *)
    let id = t.next_ip_id in
    t.next_ip_id <- (t.next_ip_id + 1) land 0xffff;
    let chunk = max_payload / 8 * 8 in
    let total = Bytes.length payload in
    let rec send_frag off =
      if off < total then begin
        let len = min chunk (total - off) in
        let last = off + len >= total in
        let h =
          { base with Ipv4.id; more_fragments = not last; frag_offset = off }
        in
        emit t ~dst_mac ~ethertype:Ethernet.Ipv4
          (Ipv4.encode h ~payload:(Bytes.sub payload off len));
        send_frag (off + len)
      end
    in
    send_frag 0
  end

(* ------------------------------------------------------------------ *)
(* UDP                                                                 *)
(* ------------------------------------------------------------------ *)

let udp_bind t ~port =
  if Hashtbl.mem t.udp_socks port then
    invalid_arg (Printf.sprintf "Stack.udp_bind: port %d in use" port);
  let sock = { port; incoming = Mailbox.create () } in
  Hashtbl.add t.udp_socks port sock;
  sock

let udp_close t sock = Hashtbl.remove t.udp_socks sock.port

let udp_send t sock ~dst ~dst_port payload =
  let datagram =
    Udp.encode
      { Udp.src_port = sock.port; dst_port }
      ~src:t.ip ~dst ~payload
  in
  send_ip t ~dst ~protocol:Ipv4.Udp datagram

let udp_recv sock = Mailbox.recv sock.incoming
let udp_recv_timeout sock span = Mailbox.recv_timeout sock.incoming span

(* ------------------------------------------------------------------ *)
(* ICMP                                                                *)
(* ------------------------------------------------------------------ *)

let ping t ~dst ?(payload_len = 56) ?(timeout = Time.sec 1) ~seq () =
  let id = t.next_ping_id in
  t.next_ping_id <- t.next_ping_id + 1;
  let w = { id; seq; reply_at = None; cond = Condition.create () } in
  t.pings <- w :: t.pings;
  let start = Engine.now (Process.engine t.sched) in
  let payload = Bytes.make payload_len 'p' in
  (* An unreachable host simply never answers. *)
  (try
     send_ip t ~dst ~protocol:Ipv4.Icmp
       (Icmp.encode (Icmp.Echo_request { Icmp.id; seq; payload }))
   with Host_unreachable _ -> ());
  let result =
    match w.reply_at with
    | Some at -> Some (at - start)
    | None -> (
        match Condition.timed_wait w.cond timeout with
        | `Signaled | `Timeout -> (
            match w.reply_at with Some at -> Some (at - start) | None -> None))
  in
  t.pings <- List.filter (fun p -> p != w) t.pings;
  result

(* ------------------------------------------------------------------ *)
(* Receive path                                                        *)
(* ------------------------------------------------------------------ *)

let handle_arp t payload =
  match Arp.decode payload with
  | None -> ()
  | Some pkt ->
      arp_learn t pkt.Arp.sender_ip pkt.Arp.sender_mac;
      if
        pkt.Arp.op = Arp.Request
        && Ipv4addr.equal pkt.Arp.target_ip t.ip
        && not (Ipv4addr.equal t.ip Ipv4addr.any)
      then
        emit t ~dst_mac:pkt.Arp.sender_mac ~ethertype:Ethernet.Arp
          (Arp.encode (Arp.reply_to pkt ~my_mac:t.mac))

let handle_icmp t (h : Ipv4.header) payload =
  match Icmp.decode payload with
  | Some (Icmp.Echo_request e) ->
      send_ip t ~dst:h.Ipv4.src ~protocol:Ipv4.Icmp
        (Icmp.encode (Icmp.Echo_reply e))
  | Some (Icmp.Echo_reply e) ->
      List.iter
        (fun w ->
          if w.id = e.Icmp.id && w.seq = e.Icmp.seq && w.reply_at = None then begin
            w.reply_at <- Some (Engine.now (Process.engine t.sched));
            Condition.broadcast w.cond
          end)
        t.pings
  | None -> ()

let handle_udp t (h : Ipv4.header) payload =
  match Udp.decode payload ~src:h.Ipv4.src ~dst:h.Ipv4.dst with
  | None -> ()
  | Some (uh, data) -> (
      match Hashtbl.find_opt t.udp_socks uh.Udp.dst_port with
      | Some sock ->
          Mailbox.send sock.incoming (h.Ipv4.src, uh.Udp.src_port, data)
      | None -> ())

(* Collect fragments; deliver the whole datagram once every byte from 0
   through the final fragment's end has arrived.  Stale partial datagrams
   are overwritten when their (source, id) pair is reused. *)
let reassemble t (h : Ipv4.header) body =
  if not (Ipv4.is_fragment h) then Some body
  else begin
    let key = (h.Ipv4.src, h.Ipv4.id) in
    let r =
      match Hashtbl.find_opt t.reassembly key with
      | Some r -> r
      | None ->
          let r = { frags = []; total = None } in
          Hashtbl.replace t.reassembly key r;
          r
    in
    r.frags <- (h.Ipv4.frag_offset, body) :: r.frags;
    if not h.Ipv4.more_fragments then
      r.total <- Some (h.Ipv4.frag_offset + Bytes.length body);
    match r.total with
    | None -> None
    | Some total ->
        let sorted = List.sort compare r.frags in
        let rec contiguous expect = function
          | [] -> expect = total
          | (off, b) :: rest ->
              off = expect && contiguous (off + Bytes.length b) rest
        in
        if contiguous 0 sorted then begin
          Hashtbl.remove t.reassembly key;
          let out = Bytes.create total in
          List.iter
            (fun (off, b) -> Bytes.blit b 0 out off (Bytes.length b))
            sorted;
          Some out
        end
        else None
  end

let for_us t (h : Ipv4.header) =
  Ipv4addr.equal h.Ipv4.dst t.ip
  || Ipv4addr.equal h.Ipv4.dst Ipv4addr.broadcast
  || Ipv4addr.equal t.ip Ipv4addr.any

let handle_frame t frame =
  match Ethernet.decode frame with
  | None -> ()
  | Some (eh, payload) -> (
      match eh.Ethernet.ethertype with
      | Ethernet.Arp -> handle_arp t payload
      | Ethernet.Ipv4 -> (
          match Ipv4.decode payload with
          | None -> ()
          | Some (ih, body) ->
              if for_us t ih then begin
                (* Opportunistically learn the sender's MAC so replies do
                   not need a blocking ARP exchange in the rx loop. *)
                arp_learn t ih.Ipv4.src eh.Ethernet.src;
                match reassemble t ih body with
                | None -> ()  (* incomplete datagram *)
                | Some body -> (
                    match ih.Ipv4.protocol with
                    | Ipv4.Icmp -> handle_icmp t ih body
                    | Ipv4.Udp -> handle_udp t ih body
                    | Ipv4.Tcp -> (
                        match t.tcp_handler with
                        | Some f -> f ih body
                        | None -> ())
                    | Ipv4.Other_proto _ -> ())
              end)
      | Ethernet.Other _ -> ())

let rx_loop t () =
  let rec loop () =
    let frame = Mailbox.recv t.rxq in
    t.rx_packets <- t.rx_packets + 1;
    if t.rx_cost > 0 then Process.sleep t.rx_cost;
    handle_frame t frame;
    loop ()
  in
  loop ()

let create sched ~name ~dev ~mac ~ip ~netmask ?gateway ?(rx_cost = 0) () =
  let t =
    {
      sched;
      name;
      dev;
      mac;
      ip;
      netmask;
      gateway;
      rx_cost;
      rxq = Mailbox.create ();
      arp_cache = Hashtbl.create 16;
      arp_waiters = Hashtbl.create 4;
      udp_socks = Hashtbl.create 8;
      pings = [];
      tcp_handler = None;
      reassembly = Hashtbl.create 8;
      rx_packets = 0;
      tx_packets = 0;
      next_ping_id = 1;
      next_ip_id = 1;
    }
  in
  Netdev.set_rx dev (fun frame -> Mailbox.send t.rxq frame);
  Netdev.set_up dev true;
  Process.spawn sched ~daemon:true ~name:(name ^ "-rx") (rx_loop t);
  t
