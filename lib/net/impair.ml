open Kite_sim

type spec = {
  loss : float;
  reorder : float;
  delay : Time.span;
  jitter : Time.span;
}

let none = { loss = 0.0; reorder = 0.0; delay = 0; jitter = 0 }

let span_of_string s =
  let s = String.trim s in
  let num_suffix suffix =
    if String.length s > String.length suffix
       && String.sub s (String.length s - String.length suffix)
            (String.length suffix)
          = suffix
    then
      float_of_string_opt
        (String.sub s 0 (String.length s - String.length suffix))
    else None
  in
  (* Longest suffix first so "us" is not read as "s". *)
  match num_suffix "ns" with
  | Some v -> Some (int_of_float v)
  | None -> (
      match num_suffix "us" with
      | Some v -> Some (int_of_float (v *. 1e3))
      | None -> (
          match num_suffix "ms" with
          | Some v -> Some (int_of_float (v *. 1e6))
          | None -> (
              match num_suffix "s" with
              | Some v -> Some (int_of_float (v *. 1e9))
              | None -> Option.map int_of_float (float_of_string_opt s))))

let spec_of_string str =
  let parts =
    String.split_on_char ',' str |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok acc
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "impair: expected key=value in %S" part)
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let float_field f =
              match float_of_string_opt (String.trim v) with
              | Some x when x >= 0.0 && x <= 1.0 -> go (f x) rest
              | _ ->
                  Error
                    (Printf.sprintf "impair: %s wants a probability, got %S" key
                       v)
            in
            let span_field f =
              match span_of_string v with
              | Some x when x >= 0 -> go (f x) rest
              | _ ->
                  Error
                    (Printf.sprintf "impair: %s wants a duration, got %S" key v)
            in
            match key with
            | "loss" -> float_field (fun x -> { acc with loss = x })
            | "reorder" -> float_field (fun x -> { acc with reorder = x })
            | "delay" -> span_field (fun x -> { acc with delay = x })
            | "jitter" -> span_field (fun x -> { acc with jitter = x })
            | _ -> Error (Printf.sprintf "impair: unknown key %S" key)))
  in
  go none parts

let spec_to_string s =
  Printf.sprintf "loss=%g,reorder=%g,delay=%dns,jitter=%dns" s.loss s.reorder
    s.delay s.jitter

type t = {
  spec : spec;
  rng : Rng.t;
  mutable pending : bool;
  mutable dropped : int;
  mutable reordered : int;
  mutable delivered : int;
}

let create ?(seed = 1) spec =
  { spec; rng = Rng.create seed; pending = false; dropped = 0; reordered = 0;
    delivered = 0 }

let spec t = t.spec

type verdict = Deliver of Time.span | Hold | Drop

let extra_delay t =
  let s = t.spec in
  if s.jitter > 0 then s.delay + Rng.int t.rng s.jitter else s.delay

let frame t =
  let s = t.spec in
  if s.loss > 0.0 && Rng.float t.rng 1.0 < s.loss then begin
    t.dropped <- t.dropped + 1;
    Drop
  end
  else if (not t.pending) && s.reorder > 0.0 && Rng.float t.rng 1.0 < s.reorder
  then begin
    t.pending <- true;
    t.reordered <- t.reordered + 1;
    Hold
  end
  else begin
    t.delivered <- t.delivered + 1;
    Deliver (extra_delay t)
  end

let release t =
  t.pending <- false;
  t.delivered <- t.delivered + 1

let dropped t = t.dropped
let reordered t = t.reordered
let delivered t = t.delivered
