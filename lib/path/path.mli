(** Critical-path latency attribution: where does a request's time go?

    The tracer's spans already partition each net/blk request's lifetime
    into consecutive stages ({!Kite_trace.Trace.span_stages}); this layer
    classifies every stage as {e queueing} (waiting for capacity: a free
    ring slot, the backend getting to the ring), {e service} (work done on
    the request's behalf: grant copy, device I/O, NIC delivery) or
    {e notification wait} (a completion sitting in the ring until the
    event channel wakes the frontend), and aggregates the durations into
    per-(kind, stage) log-bucketed histograms — the "p99 waterfall" that
    says which stage dominates tail latency, per device kind and per
    device instance.

    It also carries the continuous CPU profiler: the scheduler pushes the
    running process's name ({!proc_enter}/{!proc_leave}) and the
    hypervisor reports every simulated-CPU occupancy ({!cpu_sample}), so
    the engine attributes busy time per domain per process — the
    flat profile an incident snapshot wants next to the waterfall.

    House discipline as for every layer: substrate code holds a
    [Path.t option] and guards each call, so a run without the engine
    pays one [match None] per hook. *)

type seg_class = Queueing | Service | Notify

val class_name : seg_class -> string
(** ["queueing"], ["service"], ["notify"]. *)

val classify : kind:string -> stage:string -> seg_class
(** The static stage vocabulary: [queue] and [ring] are queueing,
    [complete] is notification wait, everything else ([frontend],
    [backend], [map], [device], [deliver], and unknown stages) is
    service. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

(** {1 Hot hooks} *)

val record_span : t -> Kite_trace.Trace.span -> unit
(** Decompose one completed span: each stage duration is classified and
    observed into its (kind, stage) histogram, and the span total into
    the kind's end-to-end accounting.  Installed as an additive span
    observer by {!tap_trace}. *)

val cpu_sample : t -> domain:string -> cost:int -> unit
(** Attribute [cost] ns of simulated CPU to [domain] and the process
    currently entered via {!proc_enter} (["(interrupt)"] outside any
    process).  The hypervisor's occupancy path calls this. *)

val proc_enter : t -> name:string -> unit
(** Scheduler wrapper: [name] ("Domain/thread") runs until the matching
    {!proc_leave}.  Maintains the attribution stack for {!cpu_sample}. *)

val proc_leave : t -> unit

(** {1 Wiring} *)

val tap_trace : t -> Kite_trace.Trace.t -> unit
(** Append {!record_span} to the tracer's additive observers
    ({!Kite_trace.Trace.add_span_observer}); composes with the flight
    recorder's primary tap. *)

val wire_metrics : t -> Kite_metrics.Registry.t -> unit
(** Mirror the attribution into the registry so the series are browsable
    and ride incident metrics deltas: per-stage histograms
    [kite_path_stage_ns{kind,stage,class}], span counters
    [kite_path_spans_total{kind}], and polled per-(domain, process) CPU
    counters [kite_path_cpu_ns_total{domain,process}]. *)

(** {1 Queries} *)

type stage_stat = {
  st_kind : string;
  st_stage : string;
  st_class : seg_class;
  st_n : int;  (** stage occurrences observed *)
  st_total_ns : int;  (** exact sum of observed durations *)
  st_p50 : float;  (** ns, from the log-bucketed histogram *)
  st_p99 : float;  (** ns *)
}

val stage_stats : t -> stage_stat list
(** Every observed (kind, stage), kinds and stages in first-seen
    (traversal) order. *)

val spans_seen : t -> int

val span_count : t -> kind:string -> int
(** Completed spans of [kind] observed. *)

val span_total_ns : t -> kind:string -> int
(** Exact sum of end-to-end durations over those spans.  Because stages
    partition each span, the per-stage totals of the kind sum to exactly
    this (the latency-waterfall experiment asserts it within 1%). *)

val class_total_ns : t -> kind:string -> seg_class -> int
(** Sum of stage durations of the class — the saturation sweep's
    "queueing overtakes service" signal. *)

val devices : t -> (string * string * int * int) list
(** Per device instance: (kind, key, spans, total ns), first-seen
    order. *)

val profile : t -> (string * string * int) list
(** The CPU profile: (domain, process, busy ns), busiest first. *)

val cpu_total_ns : t -> int

val waterfall_lines : t -> string list
(** A compact rendering of the waterfall (one line per (kind, stage)
    plus per-kind totals) for flight-recorder incident snapshots. *)

val to_json : t list -> string
(** Waterfall + profile of each engine as a JSON array. *)

(** {1 Run-wide default sink}

    [Scenario] consults this when building a testbed, exactly like the
    trace/fault/metrics/flight sinks. *)

type sink

val sink : unit -> sink
val create_in : sink -> name:string -> t
val paths : sink -> t list
val set_default : sink option -> unit
val default : unit -> sink option
