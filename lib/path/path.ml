(* Critical-path attribution over the tracer's span stages, plus the
   per-domain per-process CPU profile.  See path.mli for the model. *)

open Kite_stats

type seg_class = Queueing | Service | Notify

let class_name = function
  | Queueing -> "queueing"
  | Service -> "service"
  | Notify -> "notify"

(* The stage vocabulary is shared by net.tx and blk spans: the drivers
   name their queue-entry/dequeue hops identically, so classification is
   kind-independent.  Unknown stages are conservatively service (work we
   cannot prove was waiting). *)
let classify ~kind:_ ~stage =
  match stage with
  | "queue" | "ring" -> Queueing
  | "complete" -> Notify
  | _ -> Service

(* Histogram buckets: ns durations from sub-us hops to multi-second
   stalls; base 64 ns, factor 2 spans that in ~25 buckets. *)
let make_hist () = Histogram.create ~base:64.0 ~factor:2.0 ()

type stage_acc = {
  sa_kind : string;
  sa_stage : string;
  sa_class : seg_class;
  sa_hist : Histogram.t;
  mutable sa_n : int;
  mutable sa_total : int;
  (* Mirror into the registry when wired (kite_path_stage_ns). *)
  mutable sa_mirror : Kite_metrics.Registry.histogram option;
}

type kind_acc = {
  ka_kind : string;
  mutable ka_spans : int;
  mutable ka_total : int;
  mutable ka_mirror : Kite_metrics.Registry.counter option;
}

type dev_acc = {
  da_kind : string;
  da_key : string;
  mutable da_spans : int;
  mutable da_total : int;
}

type t = {
  pname : string;
  stages : (string * string, stage_acc) Hashtbl.t;
  mutable stage_order : (string * string) list;  (* reversed first-seen *)
  kinds : (string, kind_acc) Hashtbl.t;
  mutable kind_order : string list;  (* reversed first-seen *)
  devs : (string * string, dev_acc) Hashtbl.t;
  mutable dev_order : (string * string) list;  (* reversed first-seen *)
  mutable nspans : int;
  (* CPU profile: (domain, process) -> busy ns.  The ref cells double as
     the polled counter closures once metrics are wired. *)
  cpu : (string * string, int ref) Hashtbl.t;
  mutable cpu_total : int;
  (* Current-process stack, maintained by the scheduler wrappers. *)
  mutable cur : string list;
  mutable reg : Kite_metrics.Registry.t option;
}

let create ?(name = "path") () =
  {
    pname = name;
    stages = Hashtbl.create 32;
    stage_order = [];
    kinds = Hashtbl.create 4;
    kind_order = [];
    devs = Hashtbl.create 8;
    dev_order = [];
    nspans = 0;
    cpu = Hashtbl.create 32;
    cpu_total = 0;
    cur = [];
    reg = None;
  }

let name t = t.pname

(* ------------------------------------------------------------------ *)
(* Accumulator lookup                                                  *)
(* ------------------------------------------------------------------ *)

let stage_acc t ~kind ~stage =
  let k = (kind, stage) in
  match Hashtbl.find_opt t.stages k with
  | Some sa -> sa
  | None ->
      let cls = classify ~kind ~stage in
      let sa =
        {
          sa_kind = kind;
          sa_stage = stage;
          sa_class = cls;
          sa_hist = make_hist ();
          sa_n = 0;
          sa_total = 0;
          sa_mirror = None;
        }
      in
      (match t.reg with
      | Some r ->
          sa.sa_mirror <-
            Some
              (Kite_metrics.Registry.histogram r
                 ~help:"Per-stage critical-path latency (simulated ns)"
                 ~base:64.0 ~factor:2.0 "kite_path_stage_ns"
                 [
                   ("kind", kind); ("stage", stage);
                   ("class", class_name cls);
                 ])
      | None -> ());
      Hashtbl.add t.stages k sa;
      t.stage_order <- k :: t.stage_order;
      sa

let kind_acc t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some ka -> ka
  | None ->
      let ka = { ka_kind = kind; ka_spans = 0; ka_total = 0; ka_mirror = None } in
      (match t.reg with
      | Some r ->
          ka.ka_mirror <-
            Some
              (Kite_metrics.Registry.counter r
                 ~help:"Completed spans attributed" "kite_path_spans_total"
                 [ ("kind", kind) ])
      | None -> ());
      Hashtbl.add t.kinds kind ka;
      t.kind_order <- kind :: t.kind_order;
      ka

let dev_acc t ~kind ~key =
  let k = (kind, key) in
  match Hashtbl.find_opt t.devs k with
  | Some da -> da
  | None ->
      let da = { da_kind = kind; da_key = key; da_spans = 0; da_total = 0 } in
      Hashtbl.add t.devs k da;
      t.dev_order <- k :: t.dev_order;
      da

(* ------------------------------------------------------------------ *)
(* Hot hooks                                                           *)
(* ------------------------------------------------------------------ *)

let record_span t (sp : Kite_trace.Trace.span) =
  let kind = sp.Kite_trace.Trace.span_kind in
  List.iter
    (fun (stage, start, stop) ->
      let dur = stop - start in
      let sa = stage_acc t ~kind ~stage in
      sa.sa_n <- sa.sa_n + 1;
      sa.sa_total <- sa.sa_total + dur;
      Histogram.add sa.sa_hist (float_of_int dur);
      match sa.sa_mirror with
      | Some h -> Kite_metrics.Registry.observe h (float_of_int dur)
      | None -> ())
    sp.Kite_trace.Trace.span_stages;
  let total =
    sp.Kite_trace.Trace.span_end_at - sp.Kite_trace.Trace.span_begin_at
  in
  let ka = kind_acc t kind in
  ka.ka_spans <- ka.ka_spans + 1;
  ka.ka_total <- ka.ka_total + total;
  (match ka.ka_mirror with
  | Some c -> Kite_metrics.Registry.inc c
  | None -> ());
  let da = dev_acc t ~kind ~key:sp.Kite_trace.Trace.span_key in
  da.da_spans <- da.da_spans + 1;
  da.da_total <- da.da_total + total;
  t.nspans <- t.nspans + 1

let proc_enter t ~name = t.cur <- name :: t.cur

let proc_leave t =
  match t.cur with _ :: rest -> t.cur <- rest | [] -> ()

(* "Dom1/netback.tx.q0" -> ("Dom1", "netback.tx.q0"); the hypervisor
   supplies the domain separately, so only the thread part is kept. *)
let thread_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let cpu_cell t ~domain ~process =
  let k = (domain, process) in
  match Hashtbl.find_opt t.cpu k with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.add t.cpu k c;
      (match t.reg with
      | Some r ->
          Kite_metrics.Registry.counter_fn r "kite_path_cpu_ns_total"
            ~help:"Simulated CPU attributed per domain per process"
            [ ("domain", domain); ("process", process) ]
            (fun () -> !c)
      | None -> ());
      c

let cpu_sample t ~domain ~cost =
  if cost > 0 then begin
    let process =
      match t.cur with name :: _ -> thread_of name | [] -> "(interrupt)"
    in
    let c = cpu_cell t ~domain ~process in
    c := !c + cost;
    t.cpu_total <- t.cpu_total + cost
  end

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let tap_trace t tr = Kite_trace.Trace.add_span_observer tr (record_span t)

let wire_metrics t r =
  t.reg <- Some r;
  (* Instruments created before the wire-up get their mirrors now. *)
  List.iter
    (fun k ->
      let sa = Hashtbl.find t.stages k in
      if sa.sa_mirror = None then begin
        let h =
          Kite_metrics.Registry.histogram r
            ~help:"Per-stage critical-path latency (simulated ns)" ~base:64.0
            ~factor:2.0 "kite_path_stage_ns"
            [
              ("kind", sa.sa_kind); ("stage", sa.sa_stage);
              ("class", class_name sa.sa_class);
            ]
        in
        Histogram.buckets sa.sa_hist
        |> List.iter (fun (lo, hi, n) ->
               let mid = (lo +. hi) /. 2.0 in
               for _ = 1 to n do
                 Kite_metrics.Registry.observe h mid
               done);
        sa.sa_mirror <- Some h
      end)
    (List.rev t.stage_order);
  List.iter
    (fun kind ->
      let ka = Hashtbl.find t.kinds kind in
      if ka.ka_mirror = None then begin
        let c =
          Kite_metrics.Registry.counter r ~help:"Completed spans attributed"
            "kite_path_spans_total"
            [ ("kind", kind) ]
        in
        Kite_metrics.Registry.add c ka.ka_spans;
        ka.ka_mirror <- Some c
      end)
    (List.rev t.kind_order);
  Hashtbl.iter
    (fun (domain, process) c ->
      Kite_metrics.Registry.counter_fn r "kite_path_cpu_ns_total"
        ~help:"Simulated CPU attributed per domain per process"
        [ ("domain", domain); ("process", process) ]
        (fun () -> !c))
    t.cpu

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

type stage_stat = {
  st_kind : string;
  st_stage : string;
  st_class : seg_class;
  st_n : int;
  st_total_ns : int;
  st_p50 : float;
  st_p99 : float;
}

let stage_stats t =
  (* Kinds in first-seen order, each kind's stages in first-seen order —
     traversal order, because stages are first seen in stage order. *)
  let order = List.rev t.stage_order in
  List.concat_map
    (fun kind ->
      List.filter_map
        (fun (k, s) ->
          if k <> kind then None
          else
            let sa = Hashtbl.find t.stages (k, s) in
            Some
              {
                st_kind = sa.sa_kind;
                st_stage = sa.sa_stage;
                st_class = sa.sa_class;
                st_n = sa.sa_n;
                st_total_ns = sa.sa_total;
                st_p50 =
                  (if sa.sa_n = 0 then 0.0 else Histogram.percentile sa.sa_hist 50.0);
                st_p99 =
                  (if sa.sa_n = 0 then 0.0 else Histogram.percentile sa.sa_hist 99.0);
              })
        order)
    (List.rev t.kind_order)

let spans_seen t = t.nspans

let span_count t ~kind =
  match Hashtbl.find_opt t.kinds kind with Some ka -> ka.ka_spans | None -> 0

let span_total_ns t ~kind =
  match Hashtbl.find_opt t.kinds kind with Some ka -> ka.ka_total | None -> 0

let class_total_ns t ~kind cls =
  Hashtbl.fold
    (fun (k, _) sa acc ->
      if k = kind && sa.sa_class = cls then acc + sa.sa_total else acc)
    t.stages 0

let devices t =
  List.rev_map
    (fun k ->
      let da = Hashtbl.find t.devs k in
      (da.da_kind, da.da_key, da.da_spans, da.da_total))
    t.dev_order

let profile t =
  Hashtbl.fold (fun (d, p) c acc -> (d, p, !c) :: acc) t.cpu []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let cpu_total_ns t = t.cpu_total

let waterfall_lines t =
  let lines =
    List.map
      (fun st ->
        Printf.sprintf "%s/%s [%s] n=%d p50=%.1fus p99=%.1fus total=%.2fms"
          st.st_kind st.st_stage (class_name st.st_class) st.st_n
          (st.st_p50 /. 1e3) (st.st_p99 /. 1e3)
          (float_of_int st.st_total_ns /. 1e6))
      (stage_stats t)
  in
  let totals =
    List.rev_map
      (fun kind ->
        let ka = Hashtbl.find t.kinds kind in
        Printf.sprintf "%s TOTAL n=%d total=%.2fms queueing=%.2fms service=%.2fms notify=%.2fms"
          kind ka.ka_spans
          (float_of_int ka.ka_total /. 1e6)
          (float_of_int (class_total_ns t ~kind Queueing) /. 1e6)
          (float_of_int (class_total_ns t ~kind Service) /. 1e6)
          (float_of_int (class_total_ns t ~kind Notify) /. 1e6))
      t.kind_order
  in
  lines @ totals

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let one_to_json t =
  let stages =
    stage_stats t
    |> List.map (fun st ->
           Printf.sprintf
             {|{"kind":"%s","stage":"%s","class":"%s","n":%d,"total_ns":%d,"p50_ns":%.0f,"p99_ns":%.0f}|}
             (json_escape st.st_kind) (json_escape st.st_stage)
             (class_name st.st_class) st.st_n st.st_total_ns st.st_p50
             st.st_p99)
    |> String.concat ","
  in
  let kinds =
    List.rev t.kind_order
    |> List.map (fun kind ->
           let ka = Hashtbl.find t.kinds kind in
           Printf.sprintf
             {|{"kind":"%s","spans":%d,"total_ns":%d,"queueing_ns":%d,"service_ns":%d,"notify_ns":%d}|}
             (json_escape kind) ka.ka_spans ka.ka_total
             (class_total_ns t ~kind Queueing)
             (class_total_ns t ~kind Service)
             (class_total_ns t ~kind Notify))
    |> String.concat ","
  in
  let devs =
    devices t
    |> List.map (fun (kind, key, n, total) ->
           Printf.sprintf {|{"kind":"%s","key":"%s","spans":%d,"total_ns":%d}|}
             (json_escape kind) (json_escape key) n total)
    |> String.concat ","
  in
  let prof =
    profile t
    |> List.map (fun (d, p, ns) ->
           Printf.sprintf {|{"domain":"%s","process":"%s","busy_ns":%d}|}
             (json_escape d) (json_escape p) ns)
    |> String.concat ","
  in
  Printf.sprintf
    {|{"name":"%s","spans":%d,"stages":[%s],"kinds":[%s],"devices":[%s],"cpu_total_ns":%d,"profile":[%s]}|}
    (json_escape t.pname) t.nspans stages kinds devs t.cpu_total prof

let to_json ts = "[" ^ String.concat "," (List.map one_to_json ts) ^ "]"

(* ------------------------------------------------------------------ *)
(* Run-wide default sink                                               *)
(* ------------------------------------------------------------------ *)

type sink = { mutable members : t list (* reversed *) }

let sink () = { members = [] }

let create_in s ~name =
  let t = create ~name () in
  s.members <- t :: s.members;
  t

let paths s = List.rev s.members

let default_sink : sink option ref = ref None
let set_default s = default_sink := s
let default () = !default_sink
