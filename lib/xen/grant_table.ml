
exception Grant_error of string

type entry = {
  granter : int;
  grantee : int;
  page : Page.t;
  writable : bool;
  mutable mapped : bool;
}

type ref_ = int

type t = {
  hv : Hypervisor.t;
  entries : (int, entry) Hashtbl.t;
  mutable next_ref : int;
  mutable maps : int;
  mutable unmaps : int;
  mutable copies : int;
  mutable check : Kite_check.Check.t option;
}

let create hv =
  {
    hv;
    entries = Hashtbl.create 64;
    next_ref = 8;
    maps = 0;
    unmaps = 0;
    copies = 0;
    check = None;
  }

let set_check t c = t.check <- c

let grant_access t ~granter ~grantee ~page ~writable =
  let r = t.next_ref in
  t.next_ref <- t.next_ref + 1;
  (match t.check with
  | Some c ->
      Kite_check.Check.grant_granted c ~gref:r ~granter:granter.Domain.id
        ~grantee:grantee.Domain.id
  | None -> ());
  Hashtbl.add t.entries r
    {
      granter = granter.Domain.id;
      grantee = grantee.Domain.id;
      page;
      writable;
      mapped = false;
    };
  r

let get t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e
  | None -> raise (Grant_error (Printf.sprintf "bad grant reference %d" r))

let end_access t ~granter r =
  (match t.check with
  | Some c -> Kite_check.Check.grant_end c ~gref:r ~granter:granter.Domain.id
  | None -> ());
  let e = get t r in
  if e.granter <> granter.Domain.id then
    raise (Grant_error (Printf.sprintf "grant %d not owned by domain %d" r
                          granter.Domain.id));
  if e.mapped then
    raise (Grant_error (Printf.sprintf "grant %d is still mapped" r));
  Hashtbl.remove t.entries r

let check_grantee e r dom =
  if e.grantee <> dom.Domain.id then
    raise
      (Grant_error
         (Printf.sprintf "grant %d not for domain %d" r dom.Domain.id))

(* Mapping a page that this domain already has mapped is free: this is the
   persistent-reference fast path.  Kite's blkback looks the reference up
   in its own table first; modelling it here keeps the accounting honest
   even if a driver calls [map] twice. *)
let map_one t ~grantee r =
  (match t.check with
  | Some c -> Kite_check.Check.grant_map c ~gref:r ~grantee:grantee.Domain.id
  | None -> ());
  let e = get t r in
  check_grantee e r grantee;
  let fresh = not e.mapped in
  e.mapped <- true;
  if fresh then t.maps <- t.maps + 1;
  (fresh, e.page)

let map t ~grantee r =
  let fresh, page = map_one t ~grantee r in
  if fresh then
    Hypervisor.hypercall t.hv grantee "grant_map"
      ~extra:(Hypervisor.costs t.hv).Costs.grant_map;
  page

let map_many t ~grantee refs =
  let results = List.map (map_one t ~grantee) refs in
  let fresh = List.length (List.filter fst results) in
  if fresh > 0 then
    Hypervisor.hypercall t.hv grantee "grant_map"
      ~extra:(fresh * (Hypervisor.costs t.hv).Costs.grant_map);
  List.map snd results

let unmap_one t ~grantee r =
  (match t.check with
  | Some c ->
      Kite_check.Check.grant_unmap c ~gref:r ~grantee:grantee.Domain.id
  | None -> ());
  let e = get t r in
  check_grantee e r grantee;
  if not e.mapped then
    raise (Grant_error (Printf.sprintf "grant %d is not mapped" r));
  e.mapped <- false;
  t.unmaps <- t.unmaps + 1

let unmap t ~grantee r =
  unmap_one t ~grantee r;
  Hypervisor.hypercall t.hv grantee "grant_unmap"
    ~extra:(Hypervisor.costs t.hv).Costs.grant_unmap

let unmap_many t ~grantee refs =
  List.iter (unmap_one t ~grantee) refs;
  if refs <> [] then
    Hypervisor.hypercall t.hv grantee "grant_unmap"
      ~extra:(List.length refs * (Hypervisor.costs t.hv).Costs.grant_unmap)

let copy_cost t len =
  let costs = Hypervisor.costs t.hv in
  costs.Costs.grant_copy_base
  + (len + 1023) / 1024 * costs.Costs.grant_copy_per_kb

let copy_to_granted t ~caller r ~off data =
  (match t.check with
  | Some c -> Kite_check.Check.grant_copy c ~gref:r
  | None -> ());
  let e = get t r in
  if e.grantee <> caller.Domain.id && e.granter <> caller.Domain.id then
    raise (Grant_error (Printf.sprintf "grant %d not visible to domain %d" r
                          caller.Domain.id));
  if not e.writable then
    raise (Grant_error (Printf.sprintf "grant %d is read-only" r));
  Hypervisor.hypercall t.hv caller "grant_copy"
    ~extra:(copy_cost t (Bytes.length data));
  t.copies <- t.copies + 1;
  Page.write e.page ~off data

let copy_from_granted t ~caller r ~off ~len =
  (match t.check with
  | Some c -> Kite_check.Check.grant_copy c ~gref:r
  | None -> ());
  let e = get t r in
  if e.grantee <> caller.Domain.id && e.granter <> caller.Domain.id then
    raise (Grant_error (Printf.sprintf "grant %d not visible to domain %d" r
                          caller.Domain.id));
  Hypervisor.hypercall t.hv caller "grant_copy" ~extra:(copy_cost t len);
  t.copies <- t.copies + 1;
  Page.read e.page ~off ~len

let revoke_domain t ~domid =
  (* Domain destruction.  Two sweeps, in an order that keeps the
     checker's shadow state consistent:
     - every entry the dead domain had *mapped* is forcibly unmapped (the
       hypervisor tears down its page tables), so the surviving granter's
       [end_access] succeeds afterwards;
     - every entry the dead domain *granted* disappears with its grant
       table. *)
  let granted = ref [] in
  Hashtbl.iter
    (fun r e ->
      if e.grantee = domid && e.mapped then begin
        (match t.check with
        | Some c -> Kite_check.Check.grant_unmap c ~gref:r ~grantee:domid
        | None -> ());
        e.mapped <- false
      end;
      if e.granter = domid then granted := r :: !granted)
    t.entries;
  List.iter
    (fun r ->
      (match Hashtbl.find_opt t.entries r with
      | Some e when e.mapped ->
          (* The peer's mapping dies with the granted frame. *)
          (match t.check with
          | Some c -> Kite_check.Check.grant_unmap c ~gref:r ~grantee:e.grantee
          | None -> ());
          e.mapped <- false
      | Some _ | None -> ());
      (match t.check with
      | Some c -> Kite_check.Check.grant_end c ~gref:r ~granter:domid
      | None -> ());
      Hashtbl.remove t.entries r)
    (List.sort compare !granted)

let is_mapped t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e.mapped
  | None -> false

let active_grants t = Hashtbl.length t.entries
let map_count t = t.maps
let unmap_count t = t.unmaps
let copy_count t = t.copies
