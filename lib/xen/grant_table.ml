
exception Grant_error of string

type entry = {
  granter : int;
  grantee : int;
  page : Page.t;
  writable : bool;
  mutable mapped : bool;
}

type ref_ = int

type t = {
  hv : Hypervisor.t;
  entries : (int, entry) Hashtbl.t;
  mutable next_ref : int;
  mutable maps : int;
  mutable unmaps : int;
  mutable copies : int;
  mutable check : Kite_check.Check.t option;
  mutable race : Kite_race.Race.t option;
}

let create hv =
  {
    hv;
    entries = Hashtbl.create 64;
    next_ref = 8;
    maps = 0;
    unmaps = 0;
    copies = 0;
    check = None;
    race = None;
  }

let set_check t c = t.check <- c
let set_race t r = t.race <- r

(* Grant-entry state (mapped flag, liveness) as an instrumented location.
   [revoke_domain] deliberately bypasses these hooks: domain destruction
   is an exogenous event outside the happens-before model, like pulling
   the power on real hardware. *)
let race_entry t r site =
  match t.race with
  | Some d ->
      Kite_race.Race.write_acc d ~loc:("grant:" ^ string_of_int r) ~site
  | None -> ()

let grant_access t ~granter ~grantee ~page ~writable =
  let r = t.next_ref in
  t.next_ref <- t.next_ref + 1;
  (match t.check with
  | Some c ->
      Kite_check.Check.grant_granted c ~gref:r ~granter:granter.Domain.id
        ~grantee:grantee.Domain.id
  | None -> ());
  race_entry t r "Grant_table.grant_access";
  Hashtbl.add t.entries r
    {
      granter = granter.Domain.id;
      grantee = grantee.Domain.id;
      page;
      writable;
      mapped = false;
    };
  r

let get t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e
  | None -> raise (Grant_error (Printf.sprintf "bad grant reference %d" r))

let end_access t ~granter r =
  (match t.check with
  | Some c -> Kite_check.Check.grant_end c ~gref:r ~granter:granter.Domain.id
  | None -> ());
  race_entry t r "Grant_table.end_access";
  let e = get t r in
  if e.granter <> granter.Domain.id then
    raise (Grant_error (Printf.sprintf "grant %d not owned by domain %d" r
                          granter.Domain.id));
  if e.mapped then
    raise (Grant_error (Printf.sprintf "grant %d is still mapped" r));
  Hashtbl.remove t.entries r

let check_grantee e r dom =
  if e.grantee <> dom.Domain.id then
    raise
      (Grant_error
         (Printf.sprintf "grant %d not for domain %d" r dom.Domain.id))

(* Mapping a page that this domain already has mapped is free: this is the
   persistent-reference fast path.  Kite's blkback looks the reference up
   in its own table first; modelling it here keeps the accounting honest
   even if a driver calls [map] twice. *)
let map_one t ~grantee r =
  (match t.check with
  | Some c -> Kite_check.Check.grant_map c ~gref:r ~grantee:grantee.Domain.id
  | None -> ());
  race_entry t r "Grant_table.map";
  let e = get t r in
  check_grantee e r grantee;
  let fresh = not e.mapped in
  e.mapped <- true;
  if fresh then t.maps <- t.maps + 1;
  (fresh, e.page)

let map t ~grantee r =
  let fresh, page = map_one t ~grantee r in
  if fresh then
    Hypervisor.hypercall t.hv grantee "grant_map"
      ~extra:(Hypervisor.costs t.hv).Costs.grant_map;
  page

let map_many t ~grantee refs =
  let results = List.map (map_one t ~grantee) refs in
  let fresh = List.length (List.filter fst results) in
  if fresh > 0 then
    Hypervisor.hypercall t.hv grantee "grant_map"
      ~extra:(fresh * (Hypervisor.costs t.hv).Costs.grant_map);
  List.map snd results

let unmap_one t ~grantee r =
  (match t.check with
  | Some c ->
      Kite_check.Check.grant_unmap c ~gref:r ~grantee:grantee.Domain.id
  | None -> ());
  race_entry t r "Grant_table.unmap";
  let e = get t r in
  check_grantee e r grantee;
  if not e.mapped then
    raise (Grant_error (Printf.sprintf "grant %d is not mapped" r));
  e.mapped <- false;
  t.unmaps <- t.unmaps + 1

let unmap t ~grantee r =
  unmap_one t ~grantee r;
  Hypervisor.hypercall t.hv grantee "grant_unmap"
    ~extra:(Hypervisor.costs t.hv).Costs.grant_unmap

let unmap_many t ~grantee refs =
  List.iter (unmap_one t ~grantee) refs;
  if refs <> [] then
    Hypervisor.hypercall t.hv grantee "grant_unmap"
      ~extra:(List.length refs * (Hypervisor.costs t.hv).Costs.grant_unmap)

let copy_cost t len =
  let costs = Hypervisor.costs t.hv in
  costs.Costs.grant_copy_base
  + (len + 1023) / 1024 * costs.Costs.grant_copy_per_kb

(* Validation shared by the single and batched copy entry points.  The
   per-reference checker hook fires here so a batched hypercall still
   audits every reference it touches. *)
let copy_entry t ~caller ~for_write r =
  (match t.check with
  | Some c -> Kite_check.Check.grant_copy c ~gref:r
  | None -> ());
  (match t.race with
  | Some d ->
      Kite_race.Race.read_acc d ~loc:("grant:" ^ string_of_int r)
        ~site:"Grant_table.copy"
  | None -> ());
  let e = get t r in
  if e.grantee <> caller.Domain.id && e.granter <> caller.Domain.id then
    raise (Grant_error (Printf.sprintf "grant %d not visible to domain %d" r
                          caller.Domain.id));
  if for_write && not e.writable then
    raise (Grant_error (Printf.sprintf "grant %d is read-only" r));
  e

let copy_to_granted t ~caller r ~off data =
  let e = copy_entry t ~caller ~for_write:true r in
  Hypervisor.hypercall t.hv caller "grant_copy"
    ~extra:(copy_cost t (Bytes.length data));
  t.copies <- t.copies + 1;
  Page.write e.page ~off data

let copy_from_granted t ~caller r ~off ~len =
  let e = copy_entry t ~caller ~for_write:false r in
  Hypervisor.hypercall t.hv caller "grant_copy" ~extra:(copy_cost t len);
  t.copies <- t.copies + 1;
  Page.read e.page ~off ~len

(* Batched GNTTABOP_copy: like real gnttab_batch_copy, every op in the
   list rides one hypercall trap, so the 300ns trap cost is amortized
   over the batch while the per-kb copy work still adds up.  A 1-op
   batch costs exactly what the singular form does. *)
let copy_to_granted_many t ~caller ops =
  match ops with
  | [] -> ()
  | ops ->
      let entries =
        List.map
          (fun (r, off, data) ->
            (copy_entry t ~caller ~for_write:true r, off, data))
          ops
      in
      let extra =
        List.fold_left
          (fun acc (_, _, data) -> acc + copy_cost t (Bytes.length data))
          0 entries
      in
      Hypervisor.hypercall t.hv caller "grant_copy" ~extra;
      List.iter
        (fun (e, off, data) ->
          t.copies <- t.copies + 1;
          Page.write e.page ~off data)
        entries

let copy_from_granted_many t ~caller ops =
  match ops with
  | [] -> []
  | ops ->
      let entries =
        List.map
          (fun (r, off, len) ->
            (copy_entry t ~caller ~for_write:false r, off, len))
          ops
      in
      let extra =
        List.fold_left (fun acc (_, _, len) -> acc + copy_cost t len) 0 entries
      in
      Hypervisor.hypercall t.hv caller "grant_copy" ~extra;
      List.map
        (fun (e, off, len) ->
          t.copies <- t.copies + 1;
          Page.read e.page ~off ~len)
        entries

let revoke_domain t ~domid =
  (* Domain destruction.  Two sweeps, in an order that keeps the
     checker's shadow state consistent:
     - every entry the dead domain had *mapped* is forcibly unmapped (the
       hypervisor tears down its page tables), so the surviving granter's
       [end_access] succeeds afterwards;
     - every entry the dead domain *granted* disappears with its grant
       table. *)
  let granted = ref [] in
  Hashtbl.iter
    (fun r e ->
      if e.grantee = domid && e.mapped then begin
        (match t.check with
        | Some c -> Kite_check.Check.grant_unmap c ~gref:r ~grantee:domid
        | None -> ());
        e.mapped <- false
      end;
      if e.granter = domid then granted := r :: !granted)
    t.entries;
  List.iter
    (fun r ->
      (match Hashtbl.find_opt t.entries r with
      | Some e when e.mapped ->
          (* The peer's mapping dies with the granted frame. *)
          (match t.check with
          | Some c -> Kite_check.Check.grant_unmap c ~gref:r ~grantee:e.grantee
          | None -> ());
          e.mapped <- false
      | Some _ | None -> ());
      (match t.check with
      | Some c -> Kite_check.Check.grant_end c ~gref:r ~granter:domid
      | None -> ());
      Hashtbl.remove t.entries r)
    (List.sort compare !granted)

let is_mapped t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e.mapped
  | None -> false

let owner t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> Some e.granter
  | None -> None

let inspect t r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> Some (e.granter, e.writable)
  | None -> None

(* Pooled allocation: a per-queue set of pre-granted pages.  Frontends
   that repost the same buffers forever (netfront Rx, blkfront
   persistent data pages) take from the pool instead of granting a
   fresh page per post, and put buffers back instead of revoking — the
   grant survives reconnects, which is what makes multi-queue
   re-handshakes cheap.  [pool_drain] revokes everything idle so the
   end-of-run leak audit stays clean. *)
type pool = {
  pt : t;
  pool_granter : Domain.t;
  pool_grantee : Domain.t;
  pool_writable : bool;
  mutable pool_free : (ref_ * Page.t) list;
  mutable pool_granted : int;
  mutable pool_outstanding : int;
}

let pool t ~granter ~grantee ~writable =
  {
    pt = t;
    pool_granter = granter;
    pool_grantee = grantee;
    pool_writable = writable;
    pool_free = [];
    pool_granted = 0;
    pool_outstanding = 0;
  }

let pool_take p =
  p.pool_outstanding <- p.pool_outstanding + 1;
  match p.pool_free with
  | (r, pg) :: rest ->
      p.pool_free <- rest;
      (r, pg)
  | [] ->
      let pg = Page.alloc () in
      let r =
        grant_access p.pt ~granter:p.pool_granter ~grantee:p.pool_grantee
          ~page:pg ~writable:p.pool_writable
      in
      p.pool_granted <- p.pool_granted + 1;
      (r, pg)

let pool_put p (r, pg) =
  p.pool_outstanding <- p.pool_outstanding - 1;
  p.pool_free <- (r, pg) :: p.pool_free

let pool_drain p =
  List.iter (fun (r, _) -> end_access p.pt ~granter:p.pool_granter r)
    p.pool_free;
  p.pool_granted <- p.pool_granted - List.length p.pool_free;
  p.pool_free <- []

let pool_granted p = p.pool_granted
let pool_outstanding p = p.pool_outstanding

let active_grants t = Hashtbl.length t.entries
let map_count t = t.maps
let unmap_count t = t.unmaps
let copy_count t = t.copies
