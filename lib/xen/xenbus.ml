open Kite_sim

type state =
  | Initialising
  | Init_wait
  | Initialised
  | Connected
  | Closing
  | Closed

let state_to_string = function
  | Initialising -> "1"
  | Init_wait -> "2"
  | Initialised -> "3"
  | Connected -> "4"
  | Closing -> "5"
  | Closed -> "6"

let state_of_string = function
  | "1" -> Some Initialising
  | "2" -> Some Init_wait
  | "3" -> Some Initialised
  | "4" -> Some Connected
  | "5" -> Some Closing
  | "6" -> Some Closed
  | _ -> None

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Initialising -> "Initialising"
    | Init_wait -> "InitWait"
    | Initialised -> "Initialised"
    | Connected -> "Connected"
    | Closing -> "Closing"
    | Closed -> "Closed")

(* The xenbus device state machine: which writes are legal edges.  The
   reconnect edges (Closing/Closed -> Initialising) are what frontends
   take when a crashed backend is rebooted; same-state rewrites are
   idempotent and legal. *)
let legal_transition ~from_ ~to_ =
  from_ = to_
  ||
  match (from_, to_) with
  | Initialising, (Init_wait | Initialised) -> true
  | Init_wait, (Initialised | Connected) -> true
  | Initialised, Connected -> true
  | (Initialising | Init_wait | Initialised | Connected), (Closing | Closed)
    ->
      true
  | Closing, Closed -> true
  | (Closing | Closed), Initialising -> true
  | _ -> false

type t = { hv : Hypervisor.t; mutable check : Kite_check.Check.t option }

let create hv = { hv; check = None }
let hv t = t.hv
let set_check t c = t.check <- c

let charge t dom =
  Hypervisor.hypercall t.hv dom "xenstore_op"
    ~extra:(Hypervisor.costs t.hv).Costs.xenstore_op

let write t dom ~path value =
  charge t dom;
  Xenstore.write (Hypervisor.store t.hv) ~domid:dom.Domain.id ~path value

let read t dom ~path =
  charge t dom;
  Xenstore.read (Hypervisor.store t.hv) ~path

let read_int t dom ~path =
  match read t dom ~path with
  | Some s -> int_of_string_opt s
  | None -> None

let mkdir t dom ~path =
  charge t dom;
  Xenstore.mkdir (Hypervisor.store t.hv) ~domid:dom.Domain.id ~path

let rm t dom ~path =
  charge t dom;
  Xenstore.rm (Hypervisor.store t.hv) ~domid:dom.Domain.id ~path

let directory t dom ~path =
  charge t dom;
  Xenstore.directory (Hypervisor.store t.hv) ~path

let watch t dom ~path ~token callback =
  charge t dom;
  let engine = Hypervisor.engine t.hv in
  let latency = (Hypervisor.costs t.hv).Costs.xenstore_op in
  Xenstore.watch (Hypervisor.store t.hv) ~path ~token
    (fun ~path ~token ->
      ignore
        (Engine.schedule_after engine latency (fun () ->
             callback ~path ~token)))

let unwatch t id = Xenstore.unwatch (Hypervisor.store t.hv) id

let state_name s = Format.asprintf "%a" pp_state s

let switch_state t dom ~path st =
  let state_path = path ^ "/state" in
  let store = Hypervisor.store t.hv in
  (match Xenstore.read store ~path:state_path with
  | Some cur -> (
      match state_of_string cur with
      | Some from_ when not (legal_transition ~from_ ~to_:st) -> (
          match t.check with
          | Some c ->
              Kite_check.Check.xenbus_bad_transition c ~path:state_path
                ~from_:(state_name from_) ~to_:(state_name st)
          | None -> ())
      | Some _ | None -> ())
  | None -> ());
  let target = state_to_string st in
  (* A state write is the one xenstore update drivers must not lose: the
     peer's whole handshake hangs on it.  Model the xenbus client's
     synchronous-ack discipline by reading back and retrying (bounded),
     which is what rides out injected write loss. *)
  let rec attempt n =
    write t dom ~path:state_path target;
    if Xenstore.read store ~path:state_path <> Some target && n < 3 then
      attempt (n + 1)
  in
  attempt 0

let read_state t dom ~path =
  match read t dom ~path:(path ^ "/state") with
  | Some s -> (
      match state_of_string s with
      | Some st -> st
      | None ->
          (* Report the protocol violation instead of masking it; the
             caller still sees Closed, the safe interpretation. *)
          (match t.check with
          | Some c ->
              Kite_check.Check.xenbus_bad_state c ~path:(path ^ "/state")
                ~value:s
          | None -> ());
          Closed)
  | None -> Closed

let wait_for_state t dom ~path target =
  let cond = Condition.create () in
  let store = Hypervisor.store t.hv in
  let state_path = path ^ "/state" in
  let current () =
    match Xenstore.read store ~path:state_path with
    | Some s -> state_of_string s
    | None -> None
  in
  if current () = Some target then ()
  else begin
    let wid =
      watch t dom ~path:state_path ~token:"wait_for_state"
        (fun ~path:_ ~token:_ ->
          if current () = Some target then Condition.broadcast cond)
    in
    (* Re-poll on a coarse timer as well as on the watch: a lost watch
       event must delay the handshake, not wedge it. *)
    let rec loop () =
      if current () <> Some target then begin
        (match Condition.timed_wait cond (Time.ms 100) with
        | `Signaled | `Timeout -> ());
        loop ()
      end
    in
    loop ();
    unwatch t wid
  end

let guard_peer_state t dom ~path ~on_illegal =
  let store = Hypervisor.store t.hv in
  let state_path = path ^ "/state" in
  (* Track the last *accepted* state ourselves: the peer owns the node
     and can write anything into it, so the node's current value is not
     evidence of a legal history.  Parse raw store values here rather
     than via [read_state] — an unparsable value from a hostile peer is
     the peer's fault to report, not a model error. *)
  let last =
    ref
      (match Xenstore.read store ~path:state_path with
      | Some s -> state_of_string s
      | None -> None)
  in
  watch t dom ~path:state_path ~token:"guard-peer-state"
    (fun ~path:_ ~token:_ ->
      match Xenstore.read store ~path:state_path with
      | None -> ()  (* node removed: device teardown, not a transition *)
      | Some raw -> (
          match state_of_string raw with
          | None ->
              on_illegal
                ~from_:
                  (match !last with
                  | Some s -> state_name s
                  | None -> "(none)")
                ~to_:(Printf.sprintf "%S" raw)
          | Some st -> (
              match !last with
              | Some from_ when not (legal_transition ~from_ ~to_:st) ->
                  (* Do not follow the peer into the bogus state: [last]
                     keeps the pre-jump value, so the observer's view of
                     the handshake stays legal. *)
                  on_illegal ~from_:(state_name from_) ~to_:(state_name st)
              | _ -> last := Some st)))

let backend_path ~backend ~frontend ~ty ~devid =
  Printf.sprintf "/local/domain/%d/backend/%s/%d/%d" backend.Domain.id ty
    frontend.Domain.id devid

let frontend_path ~frontend ~ty ~devid =
  Printf.sprintf "/local/domain/%d/device/%s/%d" frontend.Domain.id ty devid
