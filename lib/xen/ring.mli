(** Xen-ABI shared I/O rings.

    The classic split-driver ring from [xen/include/public/io/ring.h]: a
    power-of-two array of slots shared between a frontend (which produces
    requests and consumes responses) and a backend (which consumes
    requests and produces responses), plus the [req_event]/[rsp_event]
    notification-suppression protocol — producers only notify when the
    consumer asked to be woken, which is what keeps event-channel traffic
    low under load.

    ['req] and ['rsp] are the request/response payload types (network and
    block define their own). *)

type ('req, 'rsp) t

exception Ring_full
(** Raised by {!push_request}/{!push_response} when every slot is in use —
    pushing then would overwrite an in-flight slot.  Well-behaved drivers
    check {!free_requests} (or their response accounting) first. *)

val create : order:int -> ('req, 'rsp) t
(** A ring with [2^order] slots.  The paper's block ring holds 32 slots,
    network rings 256. *)

val size : ('req, 'rsp) t -> int

val attach_check : ('req, 'rsp) t -> Kite_check.Check.t -> name:string -> unit
(** Attach the ring-protocol lint.  Both endpoints are covered (they share
    this value, like the shared ring page). *)

val attach_trace :
  ('req, 'rsp) t ->
  Kite_trace.Trace.t ->
  name:string ->
  now:(unit -> int) ->
  unit
(** Attach the event tracer: publishes record their batch size and notify
    decision, consume runs their length.  Rings have no clock, so the
    attaching driver supplies [now]. *)

val attach_fault :
  ('req, 'rsp) t -> Kite_fault.Fault.t -> name:string -> unit
(** Attach the fault injector.  [Ring_slot] injections corrupt a request
    slot as the backend consumes it: the descriptor is discarded (as a
    defensive backend would) and the frontend's watchdog must notice the
    response never arriving and re-issue.  [name] is the injector key. *)

val attach_race : ('req, 'rsp) t -> Kite_race.Race.t -> name:string -> unit
(** Attach the happens-before race detector: pushes and takes become
    instrumented per-slot accesses, publishes and takes release/acquire
    the per-side channels, and the producer's ring-full check acquires
    the consumer-cursor back-channel (see [Kite_race.Race.ring]). *)

(** {1 Frontend side} *)

val free_requests : ('req, 'rsp) t -> int
(** Slots available for new requests. *)

val push_request : ('req, 'rsp) t -> 'req -> unit
(** Place a request in the private producer index.  Raises {!Ring_full}
    when the ring is full. *)

val push_requests_and_check_notify : ('req, 'rsp) t -> bool
(** Publish pending private requests; true when the backend asked to be
    notified (RING_PUSH_REQUESTS_AND_CHECK_NOTIFY). *)

val pending_responses : ('req, 'rsp) t -> int

val take_response : ('req, 'rsp) t -> 'rsp option
(** Consume one response, if any. *)

val final_check_for_responses : ('req, 'rsp) t -> bool
(** Re-arm response notifications; true if responses raced in while
    re-arming (the frontend should drain again instead of sleeping). *)

(** {1 Backend side} *)

val pending_requests : ('req, 'rsp) t -> int

val request_producer_valid : ('req, 'rsp) t -> bool
(** True iff the published request-producer index is within the window
    the protocol allows ([0 <= req_prod - req_cons <= size]).  The
    producer index lives in a shared page the frontend controls, so a
    backend must check this before trusting {!pending_requests} or
    draining slots; false means the frontend scribbled garbage into the
    shared index and the ring must no longer be trusted. *)

val poke_req_prod : ('req, 'rsp) t -> int -> unit
(** Model a byzantine frontend writing an arbitrary value into the
    shared request-producer index, bypassing the publish protocol and
    all instruments.  Adversary-toolkit testing aid. *)

val take_request : ('req, 'rsp) t -> 'req option

val push_response : ('req, 'rsp) t -> 'rsp -> unit

val push_responses_and_check_notify : ('req, 'rsp) t -> bool

val final_check_for_requests : ('req, 'rsp) t -> bool
(** Re-arm request notifications; true if requests raced in. *)
