(** The hypervisor: the only trusted component of the stack.

    Owns the simulated machine — engine, scheduler, domains, the xenstore
    database, and the hypercall cost model.  All hypercall-shaped
    operations of the other modules go through {!charge} so that every
    experiment accounts hypercall counts and time uniformly. *)

type t

val create :
  ?costs:Costs.t -> ?seed:int -> ?schedule_seed:int -> unit -> t
(** A fresh machine with an empty event queue, a Dom0, and an empty
    xenstore.  [costs] defaults to {!Costs.default}.  [schedule_seed]
    arms the engine's schedule explorer (see {!Kite_sim.Engine.create}):
    same-instant events run in a seed-determined random permutation
    instead of FIFO order. *)

val engine : t -> Kite_sim.Engine.t
val sched : t -> Kite_sim.Process.sched
val metrics : t -> Kite_sim.Metrics.t
val costs : t -> Costs.t
val store : t -> Xenstore.t
val rng : t -> Kite_sim.Rng.t

val now : t -> Kite_sim.Time.t

val set_trace : t -> Kite_trace.Trace.t option -> unit
(** Attach (or detach) an event tracer for this machine: {!charge} /
    {!cpu_work} emit cost events, and the scheduler's tracer is set so
    that processes spawned afterwards are tracked (see
    {!Kite_sim.Process.set_trace}).  [None] (the default) restores the
    uninstrumented behaviour. *)

val trace : t -> Kite_trace.Trace.t option
(** The currently attached tracer, for layers that hook their own
    events (event channels, rings, drivers). *)

val set_path : t -> Kite_path.Path.t option -> unit
(** Attach (or detach) a critical-path attribution engine: every vCPU
    occupancy charge is attributed per domain per process (the
    continuous profiler), and the scheduler's engine reference is set so
    processes maintain the current-process stack (see
    {!Kite_sim.Process.set_path}).  [None] (the default) restores the
    uninstrumented behaviour. *)

val set_metrics : t -> Kite_metrics.Registry.t option -> unit
(** Attach (or detach) a metric registry for this machine.  Registers
    polled scheduler gauges (live processes, engine queue depth) and a
    per-domain vCPU busy-time counter for every current and future
    domain; all are closures read at sampling time, so the hot path is
    untouched. *)

val metrics_registry : t -> Kite_metrics.Registry.t option
(** The currently attached registry, for layers that register their own
    instruments (grant table, event channels, drivers). *)

val dom0 : t -> Domain.t

val create_domain :
  t -> name:string -> kind:Domain.kind -> vcpus:int -> mem_mb:int -> Domain.t

val domains : t -> Domain.t list
(** All domains, Dom0 first, then in creation order. *)

val find_domain : t -> int -> Domain.t option

val spawn :
  t -> Domain.t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
(** Start a process belonging to a domain; the process name is prefixed
    with the domain name for diagnostics.  [daemon] marks service loops
    the checker's quiescence report skips. *)

val charge : t -> Domain.t -> string -> Kite_sim.Time.span -> unit
(** [charge hv dom what span] models [dom] spending [span] on hypercall or
    device work named [what]: the calling process sleeps for [span] (on
    one of the domain's vCPUs, contending with its other work), the
    [what] counter increments globally and under ["dom.<name>.<what>"],
    and the domain's vCPU busy time grows.  Must run in process
    context. *)

val hypercall : t -> Domain.t -> string -> extra:Kite_sim.Time.span -> unit
(** [hypercall hv dom name ~extra] charges [hypercall_base + extra] and
    counts ["hypercall." ^ name]. *)

val cpu_work : t -> Domain.t -> Kite_sim.Time.span -> unit
(** Plain computation on the domain's vCPU (no hypercall counter). *)

val run : t -> unit
val run_for : t -> Kite_sim.Time.span -> unit
