(** Grant tables: Xen's page-sharing mechanism.

    A domain grants a specific foreign domain access to one of its pages
    and passes the grant reference through the I/O ring or xenstore; the
    grantee then either {e maps} the page into its own address space or
    asks the hypervisor to {e copy} into/out of it (grant copy — what
    modern netfront/netback use, and what Kite implements for its network
    path).

    Mapping and unmapping are hypercalls and dominate backend overhead,
    which is why Kite's blkback keeps {e persistent references}: pages stay
    mapped and a lookup table reuses the mapping on later requests (see
    {!val:map}'s behaviour when the page is already mapped). *)

type t
type ref_ = int

exception Grant_error of string

val create : Hypervisor.t -> t

val set_check : t -> Kite_check.Check.t option -> unit
(** Attach the grant sanitizer: use-after-revoke, double unmap,
    [end_access] while mapped, and the end-of-run leak audit. *)

val set_race : t -> Kite_race.Race.t option -> unit
(** Attach the race detector: grant/map/unmap/end mutate the entry's
    instrumented location, copies read it.  [revoke_domain] bypasses the
    hooks — domain destruction is exogenous to the happens-before
    model. *)

val grant_access :
  t -> granter:Domain.t -> grantee:Domain.t -> page:Page.t -> writable:bool ->
  ref_
(** Make [page] available to [grantee].  Pure table update (no
    hypercall): grant entries live in pre-shared frames. *)

val end_access : t -> granter:Domain.t -> ref_ -> unit
(** Revoke a grant.  Raises {!Grant_error} if the grant is still mapped. *)

val map : t -> grantee:Domain.t -> ref_ -> Page.t
(** Map a granted page; charges one map hypercall.  Raises {!Grant_error}
    on bad ref, wrong grantee, or revoked grant. *)

val map_many : t -> grantee:Domain.t -> ref_ list -> Page.t list
(** Batched map: one hypercall trap for the whole list (what blkback does
    for a request's segments). *)

val unmap : t -> grantee:Domain.t -> ref_ -> unit
val unmap_many : t -> grantee:Domain.t -> ref_ list -> unit

val copy_to_granted :
  t -> caller:Domain.t -> ref_ -> off:int -> Bytes.t -> unit
(** GNTTABOP_copy into the granted page without mapping it. *)

val copy_from_granted :
  t -> caller:Domain.t -> ref_ -> off:int -> len:int -> Bytes.t
(** GNTTABOP_copy out of the granted page. *)

val copy_to_granted_many :
  t -> caller:Domain.t -> (ref_ * int * Bytes.t) list -> unit
(** Batched grant copy: every [(gref, off, data)] op rides a single
    hypercall trap (cf. gnttab_batch_copy), amortizing the trap cost
    over a queue's pending requests.  Per-op validation and checker
    hooks are identical to {!copy_to_granted}; a 1-op batch costs the
    same as the singular form. *)

val copy_from_granted_many :
  t -> caller:Domain.t -> (ref_ * int * int) list -> Bytes.t list
(** Batched counterpart of {!copy_from_granted}: one hypercall for the
    whole [(gref, off, len)] list, results in op order. *)

val revoke_domain : t -> domid:int -> unit
(** Domain destruction: forcibly unmap everything [domid] had mapped (so
    surviving granters can [end_access] their references), and drop every
    entry [domid] had granted (its grant table dies with it).  The
    checker's shadow state is kept consistent (unmap before end). *)

(** {2 Pooled allocation}

    A pool is a per-queue set of pre-granted pages with one (granter,
    grantee, writability) shape.  Buffers taken from the pool come
    already granted; putting them back parks the grant for reuse
    instead of revoking it, so reposting and multi-queue re-handshakes
    cost nothing at the grant table. *)

type pool

val pool :
  t -> granter:Domain.t -> grantee:Domain.t -> writable:bool -> pool

val pool_take : pool -> ref_ * Page.t
(** Reuse an idle pooled buffer, or grant a fresh zeroed page if the
    pool is empty. *)

val pool_put : pool -> ref_ * Page.t -> unit
(** Return a buffer to the pool; the grant stays live. *)

val pool_drain : pool -> unit
(** Revoke every idle pooled grant (shutdown path; keeps the leak audit
    clean).  Outstanding buffers are untouched. *)

val pool_granted : pool -> int
(** Grants currently owned by the pool (idle + outstanding). *)

val pool_outstanding : pool -> int
(** Buffers taken and not yet put back. *)

val is_mapped : t -> ref_ -> bool

val owner : t -> ref_ -> int option
(** The granting domid of a live reference, [None] for an unknown or
    revoked one.  The backend-side ownership probe: a reference supplied
    by a frontend must be validated against that frontend's domid
    *before* any map or copy, so a forged or foreign reference is
    rejected at the trust boundary instead of surfacing as a hypervisor
    [Grant_error].  A pure table query — no checker hook, no cost. *)

val inspect : t -> ref_ -> (int * bool) option
(** [(granter domid, writable)] of a live reference; [None] when absent.
    Like {!owner} but also exposes writability, for backends that must
    write into the granted page (netback Rx). *)

val active_grants : t -> int
(** Number of grants currently in the table. *)

val map_count : t -> int
(** Total map hypercall operations performed (for the persistent-grant
    ablation). *)

val unmap_count : t -> int
(** Total unmap operations performed. *)

val copy_count : t -> int
(** Total GNTTABOP_copy operations performed (either direction). *)
