open Kite_sim

type t = {
  engine : Engine.t;
  sched : Process.sched;
  metrics : Metrics.t;
  costs : Costs.t;
  store : Xenstore.t;
  rng : Rng.t;
  mutable domains : Domain.t list;  (* reversed creation order *)
  mutable next_domid : int;
  mutable trace : Kite_trace.Trace.t option;
  mutable mreg : Kite_metrics.Registry.t option;
  mutable path : Kite_path.Path.t option;
  (* Per-domain per-vCPU occupancy cursors: concurrent work contends for
     the domain's vCPUs. *)
  cpu_free_at : (int, Time.t array) Hashtbl.t;
}

let create ?(costs = Costs.default) ?(seed = 1) ?schedule_seed () =
  let engine = Engine.create ?schedule_seed () in
  let dom0 =
    { Domain.id = 0; name = "Dom0"; kind = Domain.Dom0; vcpus = 4; mem_mb = 8192 }
  in
  {
    engine;
    sched = Process.scheduler engine;
    metrics = Metrics.create ();
    costs;
    store = Xenstore.create ();
    rng = Rng.create seed;
    domains = [ dom0 ];
    next_domid = 1;
    trace = None;
    mreg = None;
    path = None;
    cpu_free_at = Hashtbl.create 8;
  }

let engine t = t.engine
let sched t = t.sched
let metrics t = t.metrics
let costs t = t.costs
let store t = t.store
let rng t = t.rng
let now t = Engine.now t.engine
let trace t = t.trace

let set_trace t tr =
  t.trace <- tr;
  Process.set_trace t.sched tr

(* The continuous profiler: every occupancy charge is attributed to the
   domain and (through the scheduler's current-process stack) the
   process that paid it. *)
let set_path t p =
  t.path <- p;
  Process.set_path t.sched p

(* A domain's vCPU busy time already accumulates in [Metrics.add_busy]
   (see [occupy]); the registry just reads it back on each sampling
   tick, so attaching metrics costs the hot path nothing. *)
let register_domain_metrics t d =
  match t.mreg with
  | None -> ()
  | Some r ->
      Kite_metrics.Registry.counter_fn r "kite_sched_domain_busy_ns_total"
        ~help:"Cumulative vCPU busy time per domain (simulated ns)"
        [ ("domain", d.Domain.name) ]
        (fun () -> Metrics.busy t.metrics ("vcpu." ^ d.Domain.name))

let set_metrics t reg =
  t.mreg <- reg;
  match reg with
  | None -> ()
  | Some r ->
      Kite_metrics.Registry.gauge_fn r "kite_sched_processes_live"
        ~help:"Live cooperative processes" []
        (fun () -> float_of_int (Process.live t.sched));
      Kite_metrics.Registry.gauge_fn r "kite_sched_runq_depth"
        ~help:"Pending engine events (runnable queue depth)" []
        (fun () -> float_of_int (Engine.pending t.engine));
      List.iter (register_domain_metrics t) t.domains

let metrics_registry t = t.mreg

let dom0 t =
  match List.rev t.domains with d :: _ -> d | [] -> assert false

let create_domain t ~name ~kind ~vcpus ~mem_mb =
  if kind = Domain.Dom0 then invalid_arg "Hypervisor.create_domain: Dom0";
  let d = { Domain.id = t.next_domid; name; kind; vcpus; mem_mb } in
  t.next_domid <- t.next_domid + 1;
  t.domains <- d :: t.domains;
  (* Give the domain its xenstore home, owned by itself, as xl would. *)
  let home = Printf.sprintf "/local/domain/%d" d.Domain.id in
  Xenstore.mkdir t.store ~domid:0 ~path:home;
  Xenstore.set_owner t.store ~path:home ~domid:d.Domain.id;
  register_domain_metrics t d;
  d

let domains t = List.rev t.domains

let find_domain t id =
  List.find_opt (fun d -> d.Domain.id = id) t.domains

let spawn t dom ?daemon ~name body =
  Process.spawn t.sched ?daemon ~name:(dom.Domain.name ^ "/" ^ name) body

(* Occupy the domain's vCPU for [span].  Domains with one vCPU contend:
   concurrent work queues behind the cursor.  Multi-vCPU domains are
   approximated as uncontended (the evaluation's DomU has 22 vCPUs and is
   never CPU-bound in these experiments). *)
let occupy t dom span =
  Metrics.add_busy t.metrics ("vcpu." ^ dom.Domain.name) span;
  (match t.path with
  | Some p -> Kite_path.Path.cpu_sample p ~domain:dom.Domain.name ~cost:span
  | None -> ());
  if span > 0 then begin
    let cursors =
      match Hashtbl.find_opt t.cpu_free_at dom.Domain.id with
      | Some a -> a
      | None ->
          let a = Array.make (max 1 dom.Domain.vcpus) Time.zero in
          Hashtbl.add t.cpu_free_at dom.Domain.id a;
          a
    in
    (* Run on the earliest-free vCPU. *)
    let best = ref 0 in
    Array.iteri (fun i at -> if at < cursors.(!best) then best := i) cursors;
    let now = Engine.now t.engine in
    let start = max now cursors.(!best) in
    let finish = start + span in
    cursors.(!best) <- finish;
    Process.sleep (finish - now)
  end

let charge t dom what span =
  Metrics.incr t.metrics what;
  (* Per-domain breakdown for xentrace-style profiles. *)
  Metrics.incr t.metrics (Printf.sprintf "dom.%s.%s" dom.Domain.name what);
  (match t.trace with
  | Some tr ->
      Kite_trace.Trace.charge tr ~at:(Engine.now t.engine)
        ~domain:dom.Domain.name ~op:what ~cost:span
  | None -> ());
  occupy t dom span

let hypercall t dom name ~extra =
  charge t dom ("hypercall." ^ name) (t.costs.Costs.hypercall_base + extra)

let cpu_work t dom span =
  (match t.trace with
  | Some tr ->
      Kite_trace.Trace.cpu_work tr ~at:(Engine.now t.engine)
        ~domain:dom.Domain.name ~cost:span
  | None -> ());
  occupy t dom span

let run t = Engine.run t.engine
let run_for t span = Engine.run_for t.engine span
