(** Event channels: Xen's inter-domain virtual interrupts.

    A channel connects two domains.  [notify] from one side raises a
    virtual interrupt on the other side after the interrupt-delivery
    latency; like real event channels, notifications are {e level
    triggered} — sends arriving while a delivery is pending are coalesced
    into it.

    Handlers run in "interrupt context" (directly from the event loop).
    Following Kite's threaded design, driver handlers should only wake a
    dedicated thread (see the paper's [pusher] and [soft_start]). *)

type t
(** The per-machine channel table. *)

type port = int

exception Evtchn_error of string

val create : Hypervisor.t -> t

val alloc_unbound : t -> Domain.t -> remote:Domain.t -> port
(** Allocate a port for [remote] to bind (what a backend does, publishing
    the port in xenstore). *)

val bind : t -> port -> Domain.t -> unit
(** The remote domain completes the connection.  Fails on a port not
    allocated for it. *)

val set_handler : t -> port -> Domain.t -> (unit -> unit) -> unit
(** Install the side's interrupt handler. *)

val notify : t -> port -> from:Domain.t -> unit
(** Send an event to the peer.  Charges the hypercall cost to the sender;
    must run in process context. *)

val close : t -> port -> unit

val close_domain : t -> domid:int -> unit
(** Domain destruction: close every channel that has [domid] as an
    endpoint (allocated by it, or bound by it), as the hypervisor does on
    [domain_destroy].  Unbound ports merely reserved for [domid] are left
    for their owner to close during reconnect. *)

val set_fault : t -> Kite_fault.Fault.t option -> unit
(** Attach/detach the fault injector.  [Evtchn_notify] injections drop a
    notification after the sender has paid for it; the key is the port
    number in decimal. *)

val set_race : t -> Kite_race.Race.t option -> unit
(** Attach/detach the race detector: each undropped notify releases the
    port's channel with the sender's clock, and the delivery acquires it
    in interrupt scope before running the handler, so everything the
    handler wakes is ordered after the sender.  Dropped notifications
    establish no edge. *)

val is_connected : t -> port -> bool

val notifications_sent : t -> int
(** Total notify hypercalls issued (before coalescing). *)

val notifications_delivered : t -> int
(** Handler invocations actually performed (after coalescing). *)

val notifications_dropped : t -> int
(** Notifications lost to fault injection (sender paid, peer never saw
    the pending bit). *)
