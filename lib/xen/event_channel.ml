open Kite_sim

exception Evtchn_error of string

type side = {
  domid : int;
  mutable handler : (unit -> unit) option;
  mutable pending : bool;
}

type channel = {
  port : int;
  a : side;  (* allocator *)
  mutable b : side option;  (* bound remote *)
  remote_domid : int;  (* who may bind *)
  mutable closed : bool;
}

type port = int

type t = {
  hv : Hypervisor.t;
  channels : (int, channel) Hashtbl.t;
  mutable next_port : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable fault : Kite_fault.Fault.t option;
  mutable race : Kite_race.Race.t option;
}

let create hv =
  {
    hv;
    channels = Hashtbl.create 16;
    next_port = 1;
    sent = 0;
    delivered = 0;
    dropped = 0;
    fault = None;
    race = None;
  }

let set_fault t f = t.fault <- f
let set_race t r = t.race <- r

let alloc_unbound t dom ~remote =
  let port = t.next_port in
  t.next_port <- t.next_port + 1;
  let ch =
    {
      port;
      a = { domid = dom.Domain.id; handler = None; pending = false };
      b = None;
      remote_domid = remote.Domain.id;
      closed = false;
    }
  in
  Hashtbl.add t.channels port ch;
  port

let get t port =
  match Hashtbl.find_opt t.channels port with
  | Some ch when not ch.closed -> ch
  | Some _ -> raise (Evtchn_error (Printf.sprintf "port %d is closed" port))
  | None -> raise (Evtchn_error (Printf.sprintf "no such port %d" port))

let bind t port dom =
  let ch = get t port in
  if ch.b <> None then
    raise (Evtchn_error (Printf.sprintf "port %d already bound" port));
  if dom.Domain.id <> ch.remote_domid then
    raise
      (Evtchn_error
         (Printf.sprintf "port %d is reserved for domain %d" port
            ch.remote_domid));
  ch.b <- Some { domid = dom.Domain.id; handler = None; pending = false }

let side_of ch domid =
  if ch.a.domid = domid then Some ch.a
  else
    match ch.b with
    | Some s when s.domid = domid -> Some s
    | Some _ | None -> None

let set_handler t port dom f =
  let ch = get t port in
  match side_of ch dom.Domain.id with
  | Some s -> s.handler <- Some f
  | None ->
      raise
        (Evtchn_error
           (Printf.sprintf "domain %d not an endpoint of port %d"
              dom.Domain.id port))

let peer_of ch domid =
  if ch.a.domid = domid then ch.b
  else
    match ch.b with
    | Some s when s.domid = domid -> Some ch.a
    | Some _ | None -> None

let notify t port ~from =
  let ch = get t port in
  (match side_of ch from.Domain.id with
  | Some _ -> ()
  | None ->
      raise
        (Evtchn_error
           (Printf.sprintf "domain %d not an endpoint of port %d"
              from.Domain.id port)));
  Hypervisor.hypercall t.hv from "evtchn_send"
    ~extra:(Hypervisor.costs t.hv).Costs.evtchn_send;
  (match Hypervisor.trace t.hv with
  | Some tr ->
      Kite_trace.Trace.evtchn_send tr
        ~at:(Hypervisor.now t.hv)
        ~domain:from.Domain.name ~port
  | None -> ());
  t.sent <- t.sent + 1;
  match t.fault with
  | Some f
    when Kite_fault.Fault.fire f Kite_fault.Fault.Evtchn_notify
           ~key:(string_of_int port) ->
      (* Injected notification loss: the sender has paid the hypercall
         but the peer's pending bit is never set.  Consumers recover via
         their re-arm/watchdog paths. *)
      t.dropped <- t.dropped + 1
  | _ -> (
  match peer_of ch from.Domain.id with
  | None -> ()  (* not yet bound: event is lost, as in Xen *)
  | Some peer ->
      (* Notify-to-deliver happens-before edge: the handler (and whatever
         it wakes) is ordered after everything the sender published.  A
         dropped notification above establishes no edge — recovery paths
         must build their own ordering, which is exactly what the
         detector then audits. *)
      (match t.race with
      | Some r ->
          Kite_race.Race.hb_release r ~chan:("evtchn:" ^ string_of_int port)
      | None -> ());
      if not peer.pending then begin
        peer.pending <- true;
        let latency = (Hypervisor.costs t.hv).Costs.interrupt_latency in
        ignore
          (Engine.schedule_after (Hypervisor.engine t.hv) latency (fun () ->
               peer.pending <- false;
               if not ch.closed then begin
                 t.delivered <- t.delivered + 1;
                 (match Hypervisor.trace t.hv with
                 | Some tr ->
                     let domain =
                       match Hypervisor.find_domain t.hv peer.domid with
                       | Some d -> d.Domain.name
                       | None -> Printf.sprintf "dom%d" peer.domid
                     in
                     Kite_trace.Trace.evtchn_deliver tr
                       ~at:(Hypervisor.now t.hv) ~domain ~port
                 | None -> ());
                 let invoke () =
                   match peer.handler with Some f -> f () | None -> ()
                 in
                 match t.race with
                 | Some r ->
                     (* The delivery runs in interrupt context, not a
                        process: acquire the notify edge into the ambient
                        scope so conditions signalled by the handler relay
                        the sender's clock to the processes they wake. *)
                     Kite_race.Race.irq_enter r;
                     Kite_race.Race.hb_acquire r
                       ~chan:("evtchn:" ^ string_of_int port);
                     Fun.protect
                       ~finally:(fun () -> Kite_race.Race.irq_leave r)
                       invoke
                 | None -> invoke ()
               end))
      end)

let close t port =
  match Hashtbl.find_opt t.channels port with
  | Some ch -> ch.closed <- true
  | None -> ()

let close_domain t ~domid =
  (* Domain destruction: every channel with the dead domain as an actual
     endpoint is torn down, exactly as the hypervisor does on
     domain_destroy.  Unbound channels merely *reserved* for the dead
     domain stay open — their owner closes them during reconnect. *)
  Hashtbl.iter
    (fun _ ch ->
      let endpoint =
        ch.a.domid = domid
        || match ch.b with Some s -> s.domid = domid | None -> false
      in
      if endpoint then ch.closed <- true)
    t.channels

let is_connected t port =
  match Hashtbl.find_opt t.channels port with
  | Some ch -> (not ch.closed) && ch.b <> None
  | None -> false

let notifications_sent t = t.sent
let notifications_delivered t = t.delivered
let notifications_dropped t = t.dropped
