(** The xenstore database.

    A hierarchical key/value store shared between domains, maintained by
    the xenstored daemon in Dom0.  Backends and frontends advertise their
    capabilities and exchange connection parameters through it, and set
    {e watches} to learn about the other end's activity — exactly the
    mechanism Kite had to add to rumprun's HVM mode.

    This module is the pure database: paths, nodes, permissions, watches
    and transactions.  Access costs and asynchronous watch delivery are
    added by {!Xenbus}, which is what driver code uses. *)

type t

exception Permission_denied of string
(** Raised when a domain writes outside the subtrees it owns. *)

val create : unit -> t

val set_check : t -> Kite_check.Check.t option -> unit
(** Attach the xenstore lint: orphaned watches, transactions left open at
    the end of a run, and denied writes. *)

val set_fault : t -> Kite_fault.Fault.t option -> unit
(** Attach the fault injector.  [Xenstore_write] injections drop a write
    before it touches the tree (no mutation, no watch); the key is the
    written path.  [Xenstore_watch] injections lose a single watch-event
    delivery; the key is the changed path. *)

val set_race : t -> Kite_race.Race.t option -> unit
(** Attach the race detector: store nodes become release/acquire channels
    (write releases, read acquires) with a per-path write-generation
    check that flags non-transactional read-modify-writes spanning a
    blocking point (see [Kite_race.Race.xs_write]). *)

(** {1 Basic operations}

    Paths are ['/']-separated, e.g. ["/local/domain/3/device/vif/0/state"].
    [domid] identifies the calling domain; domain 0 may write anywhere,
    other domains only below nodes they own. *)

val write : t -> domid:int -> path:string -> string -> unit
(** Create or update a value; intermediate nodes are created and owned by
    the owner of the nearest existing ancestor. *)

val read : t -> path:string -> string option

val mkdir : t -> domid:int -> path:string -> unit

val rm : t -> domid:int -> path:string -> unit
(** Remove a subtree.  Removing a missing path is a no-op.  As in
    xenstored, watches registered on paths {e below} the removed node
    fire too (with the watch's own path), so a frontend watching
    [.../state] learns when the whole backend home vanishes. *)

val exists : t -> path:string -> bool

val directory : t -> path:string -> string list
(** Child names, sorted; [] for a missing path. *)

val set_owner : t -> path:string -> domid:int -> unit
(** Give a domain ownership of a subtree (what [xl] does when it creates
    [/local/domain/<id>]).  Only meaningful on existing paths. *)

val generation : t -> int
(** Bumped on every successful mutation. *)

(** {1 Watches}

    A watch fires (synchronously, from the mutating call) whenever a node
    at or below the watched path is created, modified or removed.  Per Xen
    semantics it also fires once immediately upon registration. *)

type watch_id

val watch :
  t -> path:string -> token:string -> (path:string -> token:string -> unit) ->
  watch_id

val unwatch : t -> watch_id -> unit

(** {1 Transactions}

    Coarse-grained optimistic concurrency, like xenstored's: a transaction
    buffers writes and commits them atomically; if the store changed since
    the transaction started, the commit fails with [`Conflict] and the
    caller retries. *)

type tx

val tx_start : t -> tx
val tx_write : tx -> domid:int -> path:string -> string -> unit
val tx_read : tx -> path:string -> string option
(** Reads see the transaction's own buffered writes. *)

val tx_commit : tx -> [ `Committed | `Conflict ]
val tx_abort : tx -> unit

(** {1 Paths} *)

val split_path : string -> string list
(** ["/a/b//c"] -> [["a"; "b"; "c"]].  Raises [Invalid_argument] on the
    empty path. *)
