(** Xenbus: the driver-facing interface to xenstore.

    Real drivers never touch xenstored's database directly — they go
    through xenbus, which adds the access cost (a ring round trip to
    xenstored in Dom0), asynchronous watch delivery, the device state
    machine used by the frontend/backend handshake, and the standard
    device path layout.  This is the layer Kite had to implement for
    rumprun HVM. *)

(** Device connection states, with the xenstore encoding of
    [enum xenbus_state]. *)
type state =
  | Initialising  (** 1 *)
  | Init_wait  (** 2 *)
  | Initialised  (** 3 *)
  | Connected  (** 4 *)
  | Closing  (** 5 *)
  | Closed  (** 6 *)

val state_to_string : state -> string
(** The numeric wire encoding, e.g. [Connected] -> "4". *)

val state_of_string : string -> state option

val pp_state : Format.formatter -> state -> unit

val legal_transition : from_:state -> to_:state -> bool
(** The edges of the xenbus device state machine, including the
    reconnect edges ([Closing]/[Closed] -> [Initialising]) taken when a
    crashed backend is rebooted.  Same-state rewrites are legal. *)

type t

val create : Hypervisor.t -> t

val hv : t -> Hypervisor.t

val set_check : t -> Kite_check.Check.t option -> unit
(** Attach the protocol checker: {!read_state} reports unparsable state
    values and {!switch_state} reports illegal transitions. *)

(** {1 Charged xenstore access}

    Each call costs one xenstore round trip to the calling domain. *)

val write : t -> Domain.t -> path:string -> string -> unit
val read : t -> Domain.t -> path:string -> string option
val read_int : t -> Domain.t -> path:string -> int option
val mkdir : t -> Domain.t -> path:string -> unit
val rm : t -> Domain.t -> path:string -> unit
val directory : t -> Domain.t -> path:string -> string list

val watch :
  t -> Domain.t -> path:string -> token:string ->
  (path:string -> token:string -> unit) -> Xenstore.watch_id
(** Watch events are delivered asynchronously, one xenstore latency after
    the triggering write, mirroring xenstored's notification path. *)

val unwatch : t -> Xenstore.watch_id -> unit

(** {1 Device state machine} *)

val switch_state : t -> Domain.t -> path:string -> state -> unit
(** Write [<path>/state].  Illegal transitions are reported through the
    attached checker (the write still happens — this is a lint, not an
    enforcement point).  The write is read back and retried a bounded
    number of times, modelling the xenbus client's synchronous-ack
    discipline, so an injected xenstore write loss delays rather than
    wedges a handshake. *)

val read_state : t -> Domain.t -> path:string -> state
(** Defaults to [Closed] when absent.  An unparsable value also reads as
    [Closed] — the safe interpretation — but is reported through the
    attached checker as a protocol violation instead of being silently
    masked. *)

val wait_for_state :
  t -> Domain.t -> path:string -> state -> unit
(** Block the calling process until [<path>/state] reads the given state.
    Returns immediately if already there.  Re-polls on a coarse timer in
    addition to the watch, so a lost watch event delays the wait instead
    of wedging it. *)

val guard_peer_state :
  t ->
  Domain.t ->
  path:string ->
  on_illegal:(from_:string -> to_:string -> unit) ->
  Xenstore.watch_id
(** Backend-side validation of *peer-driven* state transitions: watch
    [<path>/state] (the peer's device directory), track the last legally
    reached state, and invoke [on_illegal] — in engine context, with
    human-readable state names — for every write that is an unparsable
    value or not an edge of {!legal_transition}.  The guard never
    follows the peer into a bogus state: its notion of "current" stays
    at the last legal value, so a hostile frontend cannot drag the
    backend's handshake tracking along.  Returns the watch id; callers
    must {!unwatch} it on teardown. *)

(** {1 Standard device paths} *)

val backend_path :
  backend:Domain.t -> frontend:Domain.t -> ty:string -> devid:int -> string
(** ["/local/domain/<b>/backend/<ty>/<f>/<devid>"]. *)

val frontend_path : frontend:Domain.t -> ty:string -> devid:int -> string
(** ["/local/domain/<f>/device/<ty>/<devid>"]. *)
