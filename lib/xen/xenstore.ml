exception Permission_denied of string

type node = {
  mutable value : string;
  mutable owner : int;
  children : (string, node) Hashtbl.t;
}

type watch = {
  id : int;
  wpath : string list;
  token : string;
  callback : path:string -> token:string -> unit;
}

type watch_id = int

type t = {
  root : node;
  mutable watches : watch list;
  mutable next_watch : int;
  mutable next_tx : int;
  mutable gen : int;
  mutable check : Kite_check.Check.t option;
  mutable fault : Kite_fault.Fault.t option;
  mutable race : Kite_race.Race.t option;
}

let make_node owner = { value = ""; owner; children = Hashtbl.create 4 }

let create () =
  {
    root = make_node 0;
    watches = [];
    next_watch = 0;
    next_tx = 0;
    gen = 0;
    check = None;
    fault = None;
    race = None;
  }

let set_check t c = t.check <- c
let set_fault t f = t.fault <- f
let set_race t r = t.race <- r

let split_path p =
  if p = "" then invalid_arg "Xenstore.split_path: empty path";
  String.split_on_char '/' p |> List.filter (fun s -> s <> "")

let join_path segs = "/" ^ String.concat "/" segs

let rec find node = function
  | [] -> Some node
  | seg :: rest -> (
      match Hashtbl.find_opt node.children seg with
      | Some child -> find child rest
      | None -> None)

let find_path t path = find t.root (split_path path)

(* Permission model: domain 0 is all-powerful; any other domain may only
   mutate at or below a node it owns. *)
let rec may_write node domid = function
  | [] -> domid = 0 || node.owner = domid
  | seg :: rest -> (
      domid = 0 || node.owner = domid
      ||
      match Hashtbl.find_opt node.children seg with
      | Some child -> may_write child domid rest
      | None -> false)

let is_prefix prefix path =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | a :: pa, b :: pb -> a = b && go (pa, pb)
  in
  go (prefix, path)

let deliver_watch t w ~path =
  match t.fault with
  | Some f
    when Kite_fault.Fault.fire f Kite_fault.Fault.Xenstore_watch ~key:path ->
      (* Injected watch-event loss: the store mutated but this client is
         never told.  Pollers (Xenbus.wait_for_state) recover. *)
      ()
  | _ -> w.callback ~path ~token:w.token

let fire_watches t segs =
  let path = join_path segs in
  List.iter
    (fun w -> if is_prefix w.wpath segs then deliver_watch t w ~path)
    (* Snapshot so callbacks adding/removing watches are safe. *)
    (List.rev t.watches)

(* Removing a subtree also fires watches registered *below* the removed
   node, as xenstored does: a frontend watching .../backend/vbd/1/0/state
   must learn that an ancestor (the whole backend domain home) vanished. *)
let fire_watches_below t segs =
  List.iter
    (fun w ->
      if is_prefix segs w.wpath && List.length w.wpath > List.length segs
      then deliver_watch t w ~path:(join_path w.wpath))
    (List.rev t.watches)

(* Walk to [segs], creating intermediate nodes owned by the nearest
   existing ancestor's owner. *)
let rec ensure node = function
  | [] -> node
  | seg :: rest ->
      let child =
        match Hashtbl.find_opt node.children seg with
        | Some c -> c
        | None ->
            let c = make_node node.owner in
            Hashtbl.add node.children seg c;
            c
      in
      ensure child rest

let check_write t domid segs =
  if not (may_write t.root domid segs) then begin
    (match t.check with
    | Some c ->
        Kite_check.Check.write_denied c ~domid ~path:(join_path segs)
    | None -> ());
    raise
      (Permission_denied
         (Printf.sprintf "domain %d cannot write %s" domid (join_path segs)))
  end

let write_segs t ~domid segs value =
  check_write t domid segs;
  match t.fault with
  | Some f
    when Kite_fault.Fault.fire f Kite_fault.Fault.Xenstore_write
           ~key:(join_path segs) ->
      (* Injected write loss: the request is dropped before touching the
         tree — no mutation, no generation bump, no watch fires.  Writers
         that must not lose state (Xenbus.switch_state) read back and
         retry. *)
      ()
  | _ ->
      (match t.race with
      | Some r -> Kite_race.Race.xs_write r ~path:(join_path segs)
      | None -> ());
      let node = ensure t.root segs in
      node.value <- value;
      t.gen <- t.gen + 1;
      fire_watches t segs

let write t ~domid ~path value = write_segs t ~domid (split_path path) value

let read t ~path =
  (match t.race with
  | Some r -> Kite_race.Race.xs_read r ~path:(join_path (split_path path))
  | None -> ());
  match find_path t path with Some n -> Some n.value | None -> None

let mkdir t ~domid ~path =
  let segs = split_path path in
  check_write t domid segs;
  (match t.race with
  | Some r -> Kite_race.Race.xs_write r ~path:(join_path segs)
  | None -> ());
  ignore (ensure t.root segs);
  t.gen <- t.gen + 1;
  fire_watches t segs

let rm t ~domid ~path =
  let segs = split_path path in
  match segs with
  | [] -> invalid_arg "Xenstore.rm: cannot remove root"
  | _ ->
      if find t.root segs <> None then begin
        check_write t domid segs;
        (match t.race with
        | Some r -> Kite_race.Race.xs_write r ~path:(join_path segs)
        | None -> ());
        let parent_segs = List.filteri (fun i _ -> i < List.length segs - 1) segs in
        let leaf = List.nth segs (List.length segs - 1) in
        (match find t.root parent_segs with
        | Some parent -> Hashtbl.remove parent.children leaf
        | None -> ());
        t.gen <- t.gen + 1;
        fire_watches t segs;
        fire_watches_below t segs
      end

let exists t ~path = find_path t path <> None

let directory t ~path =
  match find_path t path with
  | None -> []
  | Some n ->
      Hashtbl.fold (fun k _ acc -> k :: acc) n.children []
      |> List.sort String.compare

let set_owner t ~path ~domid =
  match find_path t path with
  | Some n ->
      let rec set n =
        n.owner <- domid;
        Hashtbl.iter (fun _ c -> set c) n.children
      in
      set n
  | None -> ()

let generation t = t.gen

let watch t ~path ~token callback =
  let id = t.next_watch in
  t.next_watch <- t.next_watch + 1;
  (match t.check with
  | Some c -> Kite_check.Check.watch_added c ~id ~path ~token
  | None -> ());
  let w = { id; wpath = split_path path; token; callback } in
  t.watches <- w :: t.watches;
  (* Xen fires a watch once immediately upon registration. *)
  callback ~path ~token;
  id

let unwatch t id =
  (match t.check with
  | Some c -> Kite_check.Check.watch_removed c ~id
  | None -> ());
  t.watches <- List.filter (fun w -> w.id <> id) t.watches

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

type tx = {
  store : t;
  tx_id : int;
  start_gen : int;
  mutable ops : (int * string list * string) list;  (* domid, path, value; reversed *)
  mutable aborted : bool;
}

let tx_start t =
  let tx_id = t.next_tx in
  t.next_tx <- t.next_tx + 1;
  (match t.check with
  | Some c -> Kite_check.Check.tx_opened c ~id:tx_id
  | None -> ());
  { store = t; tx_id; start_gen = t.gen; ops = []; aborted = false }

let tx_closed tx =
  match tx.store.check with
  | Some c -> Kite_check.Check.tx_closed c ~id:tx.tx_id
  | None -> ()

let tx_write tx ~domid ~path value =
  if tx.aborted then invalid_arg "Xenstore.tx_write: aborted transaction";
  tx.ops <- (domid, split_path path, value) :: tx.ops

let tx_read tx ~path =
  let segs = split_path path in
  (* Own buffered writes win over the store. *)
  let rec search = function
    | [] -> read tx.store ~path
    | (_, s, v) :: rest -> if s = segs then Some v else search rest
  in
  search tx.ops

let tx_commit tx =
  if tx.aborted then invalid_arg "Xenstore.tx_commit: aborted transaction";
  (* A conflicted transaction ends too: the caller restarts with a fresh
     [tx_start], like real xenstored's EAGAIN. *)
  tx_closed tx;
  if tx.store.gen <> tx.start_gen && tx.ops <> [] then `Conflict
  else begin
    List.iter
      (fun (domid, segs, v) -> write_segs tx.store ~domid segs v)
      (List.rev tx.ops);
    tx.aborted <- true;
    `Committed
  end

let tx_abort tx =
  if not tx.aborted then tx_closed tx;
  tx.aborted <- true
