let size = 4096

type t = { frame : int; data : Bytes.t }

let next_frame = ref 0

let frame t = t.frame

let alloc () =
  let f = !next_frame in
  incr next_frame;
  { frame = f; data = Bytes.make size '\000' }

let check off len =
  if off < 0 || len < 0 || off + len > size then
    invalid_arg (Printf.sprintf "Page: range %d+%d out of bounds" off len)

(* Page contents are prime shared state: a frontend writing a frame after
   granting it while the backend copies from it is the classic split-driver
   race.  The hooks use the race detector's ambient scope — [active] is one
   global ref read when no detector is live, and the location string is
   only built once a detector is. *)
let race_read t site =
  if Kite_race.Race.active () then
    (* Page payloads are HB-checked but not RMW-armed: concurrent block
       rewrites are last-write-wins at the application level. *)
    Kite_race.Race.scoped_read ~arm:false
      ~loc:("page:" ^ string_of_int t.frame)
      ~site ()

let race_write t site =
  if Kite_race.Race.active () then
    Kite_race.Race.scoped_write ~loc:("page:" ^ string_of_int t.frame) ~site

let read t ~off ~len =
  check off len;
  race_read t "Page.read";
  Bytes.sub t.data off len

let write t ~off b =
  check off (Bytes.length b);
  race_write t "Page.write";
  Bytes.blit b 0 t.data off (Bytes.length b)

let blit ~src ~src_off ~dst ~dst_off ~len =
  check src_off len;
  check dst_off len;
  race_read src "Page.blit";
  race_write dst "Page.blit";
  Bytes.blit src.data src_off dst.data dst_off len

let fill t c =
  race_write t "Page.fill";
  Bytes.fill t.data 0 size c

let contents t = t.data
