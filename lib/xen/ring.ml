(* Indices are free-running (mod 2^62 in practice); slot = idx land mask.
   Separate request and response arrays stand in for the union-typed slot
   array of the C ABI; occupancy arithmetic is identical. *)

exception Ring_full

type ('req, 'rsp) t = {
  size : int;
  mask : int;
  reqs : 'req option array;
  rsps : 'rsp option array;
  (* Shared indices. *)
  mutable req_prod : int;
  mutable rsp_prod : int;
  (* Private cursors. *)
  mutable req_prod_pvt : int;  (* frontend *)
  mutable req_cons : int;  (* backend *)
  mutable rsp_prod_pvt : int;  (* backend *)
  mutable rsp_cons : int;  (* frontend *)
  (* Notification thresholds. *)
  mutable req_event : int;
  mutable rsp_event : int;
  mutable check : Kite_check.Check.ring option;
  mutable trace : Kite_trace.Trace.ring option;
  mutable fault : (Kite_fault.Fault.t * string) option;
  mutable race : Kite_race.Race.ring option;
  (* True once any sink is attached: the hot paths test this single flag
     and skip all per-sink option matches on uninstrumented rings, so
     the observability stack costs one predictable branch per operation
     when disabled. *)
  mutable hooks : bool;
}

let create ~order =
  if order < 0 || order > 20 then invalid_arg "Ring.create: bad order";
  let size = 1 lsl order in
  {
    size;
    mask = size - 1;
    reqs = Array.make size None;
    rsps = Array.make size None;
    req_prod = 0;
    rsp_prod = 0;
    req_prod_pvt = 0;
    req_cons = 0;
    rsp_prod_pvt = 0;
    rsp_cons = 0;
    req_event = 1;
    rsp_event = 1;
    check = None;
    trace = None;
    fault = None;
    race = None;
    hooks = false;
  }

let size t = t.size

let attach_check t c ~name =
  t.check <- Some (Kite_check.Check.ring c ~name);
  t.hooks <- true

let attach_trace t tr ~name ~now =
  t.trace <- Some (Kite_trace.Trace.ring tr ~name ~now);
  t.hooks <- true

let attach_fault t f ~name =
  t.fault <- Some (f, name);
  t.hooks <- true

let attach_race t r ~name =
  t.race <- Some (Kite_race.Race.ring r ~name ~size:t.size);
  t.hooks <- true

(* Unconsumed responses pending plus in-flight requests bound the number of
   slots the frontend may still fill. *)
let free_requests t = t.size - (t.req_prod_pvt - t.rsp_cons)

let push_request t req =
  if t.hooks then begin
    (match t.check with
    | Some rc ->
        Kite_check.Check.ring_push rc `Req
          ~used:(t.req_prod_pvt - t.rsp_cons) ~size:t.size
    | None -> ());
    if free_requests t <= 0 then raise Ring_full;
    match t.race with
    | Some rr ->
        Kite_race.Race.ring_push rr `Req ~slot:(t.req_prod_pvt land t.mask)
    | None -> ()
  end
  else if free_requests t <= 0 then raise Ring_full;
  t.reqs.(t.req_prod_pvt land t.mask) <- Some req;
  t.req_prod_pvt <- t.req_prod_pvt + 1

let push_requests_and_check_notify t =
  let old = t.req_prod in
  if t.hooks then begin
    (match t.check with
    | Some rc ->
        Kite_check.Check.ring_publish rc `Req ~old_prod:old
          ~prod:t.req_prod_pvt
    | None -> ());
    match t.race with
    | Some rr -> Kite_race.Race.ring_publish rr `Req
    | None -> ()
  end;
  t.req_prod <- t.req_prod_pvt;
  (* notify iff the consumer's event threshold lies in (old, new]. *)
  let notify = t.req_prod - t.req_event < t.req_prod - old in
  (if t.hooks then
     match t.trace with
     | Some rt ->
         Kite_trace.Trace.ring_publish rt `Req ~batch:(t.req_prod - old)
           ~notify
     | None -> ());
  notify

let pending_requests t = t.req_prod - t.req_cons

(* The shared producer index lives in a page the frontend can scribble
   on at will; the only invariant a backend may assume is the one it
   checks.  A published window outside [0, size] means the index is
   garbage and no slot behind it can be trusted. *)
let request_producer_valid t =
  let window = t.req_prod - t.req_cons in
  window >= 0 && window <= t.size

let poke_req_prod t v =
  (* Byzantine-frontend testing aid: scribble directly into the shared
     index, bypassing the private-copy/publish protocol and every
     instrument (a hostile guest does not call our hooks). *)
  t.req_prod <- v

let rec take_request t =
  let got = t.req_cons <> t.req_prod in
  if t.hooks then begin
    (match t.check with
    | Some rc -> Kite_check.Check.ring_take rc `Req ~got
    | None -> ());
    (match t.trace with
    | Some rt -> Kite_trace.Trace.ring_take rt `Req ~got
    | None -> ());
    match t.race with
    | Some rr ->
        Kite_race.Race.ring_take rr `Req ~got ~slot:(t.req_cons land t.mask)
    | None -> ()
  end;
  if not got then None
  else begin
    let i = t.req_cons land t.mask in
    let r = t.reqs.(i) in
    t.reqs.(i) <- None;
    t.req_cons <- t.req_cons + 1;
    match t.fault with
    | Some (f, key)
      when Kite_fault.Fault.fire f Kite_fault.Fault.Ring_slot ~key ->
        (* Injected slot corruption: a defensive consumer validates the
           descriptor, discards it, and moves on.  The producer's
           watchdog is responsible for noticing the missing response. *)
        take_request t
    | _ -> (
        match r with
        | Some _ -> r
        | None -> invalid_arg "Ring.take_request: corrupt slot")
  end

let push_response t rsp =
  if t.hooks then begin
    (match t.check with
    | Some rc ->
        Kite_check.Check.ring_push rc `Rsp
          ~used:(t.rsp_prod_pvt - t.rsp_cons) ~size:t.size
    | None -> ());
    if t.rsp_prod_pvt - t.rsp_cons >= t.size then raise Ring_full;
    match t.race with
    | Some rr ->
        Kite_race.Race.ring_push rr `Rsp ~slot:(t.rsp_prod_pvt land t.mask)
    | None -> ()
  end
  else if t.rsp_prod_pvt - t.rsp_cons >= t.size then raise Ring_full;
  t.rsps.(t.rsp_prod_pvt land t.mask) <- Some rsp;
  t.rsp_prod_pvt <- t.rsp_prod_pvt + 1

let push_responses_and_check_notify t =
  let old = t.rsp_prod in
  if t.hooks then begin
    (match t.check with
    | Some rc ->
        Kite_check.Check.ring_publish rc `Rsp ~old_prod:old
          ~prod:t.rsp_prod_pvt
    | None -> ());
    match t.race with
    | Some rr -> Kite_race.Race.ring_publish rr `Rsp
    | None -> ()
  end;
  t.rsp_prod <- t.rsp_prod_pvt;
  let notify = t.rsp_prod - t.rsp_event < t.rsp_prod - old in
  (if t.hooks then
     match t.trace with
     | Some rt ->
         Kite_trace.Trace.ring_publish rt `Rsp ~batch:(t.rsp_prod - old)
           ~notify
     | None -> ());
  notify

let pending_responses t = t.rsp_prod - t.rsp_cons

let take_response t =
  let got = t.rsp_cons <> t.rsp_prod in
  if t.hooks then begin
    (match t.check with
    | Some rc -> Kite_check.Check.ring_take rc `Rsp ~got
    | None -> ());
    (match t.trace with
    | Some rt -> Kite_trace.Trace.ring_take rt `Rsp ~got
    | None -> ());
    match t.race with
    | Some rr ->
        Kite_race.Race.ring_take rr `Rsp ~got ~slot:(t.rsp_cons land t.mask)
    | None -> ()
  end;
  if not got then None
  else begin
    let i = t.rsp_cons land t.mask in
    let r = t.rsps.(i) in
    t.rsps.(i) <- None;
    t.rsp_cons <- t.rsp_cons + 1;
    match r with
    | Some _ -> r
    | None -> invalid_arg "Ring.take_response: corrupt slot"
  end

let final_check_for_requests t =
  (match t.check with
  | Some rc -> Kite_check.Check.ring_final_check rc `Req
  | None -> ());
  if pending_requests t > 0 then true
  else begin
    t.req_event <- t.req_cons + 1;
    pending_requests t > 0
  end

let final_check_for_responses t =
  (match t.check with
  | Some rc -> Kite_check.Check.ring_final_check rc `Rsp
  | None -> ());
  if pending_responses t > 0 then true
  else begin
    t.rsp_event <- t.rsp_cons + 1;
    pending_responses t > 0
  end
