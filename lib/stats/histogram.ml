type t = {
  base : float;
  factor : float;
  counts : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
  mutable n : int;
  mutable sum : float;
}

let create ?(base = 0.001) ?(factor = 2.0) () =
  if base <= 0.0 || factor <= 1.0 then invalid_arg "Histogram.create";
  { base; factor; counts = Hashtbl.create 32; n = 0; sum = 0.0 }

let bucket_of t v =
  if v < t.base then 0
  else int_of_float (Float.log (v /. t.base) /. Float.log t.factor) + 1

let lower_bound t i = if i = 0 then 0.0 else t.base *. (t.factor ** float_of_int (i - 1))
let upper_bound t i = t.base *. (t.factor ** float_of_int i)

let add t v =
  let i = bucket_of t (max v 0.0) in
  (match Hashtbl.find_opt t.counts i with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts i (ref 1));
  t.n <- t.n + 1;
  t.sum <- t.sum +. v

let add_list t = List.iter (add t)

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.counts []
  |> List.sort compare
  |> List.map (fun (i, c) -> (lower_bound t i, upper_bound t i, c))

let quantile t q =
  if t.n = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q";
  let target = q *. float_of_int t.n in
  let rec walk seen = function
    | [] -> invalid_arg "Histogram.quantile: unreachable"
    | [ (lo, hi, c) ] ->
        let into = Float.max 0.0 (target -. float_of_int seen) in
        lo +. ((hi -. lo) *. Float.min 1.0 (into /. float_of_int c))
    | (lo, hi, c) :: rest ->
        if float_of_int (seen + c) >= target then
          let into = Float.max 0.0 (target -. float_of_int seen) in
          lo +. ((hi -. lo) *. (into /. float_of_int c))
        else walk (seen + c) rest
  in
  walk 0 (buckets t)

let percentile t p = quantile t (p /. 100.)

let sparkline t =
  (* ASCII bars keep table column widths correct. *)
  let bars = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |] in
  let bs = buckets t in
  match bs with
  | [] -> ""
  | _ ->
      let max_c = List.fold_left (fun a (_, _, c) -> max a c) 1 bs in
      String.init (List.length bs) (fun i ->
          let _, _, c = List.nth bs i in
          bars.(c * (Array.length bars - 1) / max_c))

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g %s" t.n
      (mean t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
      (sparkline t)
