(** Log-bucketed histograms for latency distributions.

    Values are assigned to buckets whose bounds grow geometrically (factor
    2 by default), so a single histogram spans nanoseconds to seconds with
    bounded memory.  Quantiles interpolate within the bucket. *)

type t

val create : ?base:float -> ?factor:float -> unit -> t
(** Buckets are [\[base * factor^i, base * factor^(i+1))]; defaults:
    base 0.001, factor 2.0 (suits millisecond-scale samples down to
    microseconds). *)

val add : t -> float -> unit
(** Negative values are clamped to the lowest bucket. *)

val add_list : t -> float list -> unit

val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], linearly interpolated within the
    bucket.  Raises [Invalid_argument] when empty or [q] out of range.

    Convention note: histograms speak quantiles ([q ∈ \[0, 1\]]) while
    {!Summary.percentile} speaks percentiles ([p ∈ \[0, 100\]]); use
    {!percentile} when mixing the two. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]] — the bridge to the
    {!Summary.percentile} convention: exactly [quantile t (p /. 100.)],
    including its exceptions. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as (lower bound, upper bound, count), ascending. *)

val sparkline : t -> string
(** A compact ASCII bar rendering of the distribution, e.g. [".:=@#-."],
    one character per non-empty bucket. *)

val pp : Format.formatter -> t -> unit
(** Count, mean, p50/p90/p99 and the sparkline. *)
