(** Summary statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stdev : float;  (** sample standard deviation (n-1 denominator) *)
  rsd_pct : float;  (** relative standard deviation, percent of the mean *)
  min : float;
  max : float;
}

val of_list : float list -> t
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val stdev : float list -> float

val rsd_pct : float list -> float
(** Relative standard deviation as a percentage of the mean; 0 when the
    mean is 0. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation.
    Raises [Invalid_argument] on the empty list.

    Convention note: this takes percentiles ([p ∈ \[0, 100\]]) while
    {!Histogram.quantile} takes quantiles ([q ∈ \[0, 1\]]);
    {!Histogram.percentile} bridges the two. *)

val median : float list -> float

val pp : Format.formatter -> t -> unit
