open Kite_sim
open Kite_net

type t = {
  store : (string, Bytes.t) Hashtbl.t;
  cpu_per_op : Time.span;
  mutable sets : int;
  mutable gets : int;
}

let handle t conn () =
  let r = Line_reader.create conn in
  let rec serve () =
    match Line_reader.line r with
    | None -> Tcp.close conn
    | Some cmd -> (
        if t.cpu_per_op > 0 then Process.sleep t.cpu_per_op;
        match String.split_on_char ' ' (String.trim cmd) with
        | [ "SET"; key; len ] -> (
            match int_of_string_opt len with
            | Some n -> (
                match Line_reader.exactly r n with
                | Some payload ->
                    Hashtbl.replace t.store key payload;
                    t.sets <- t.sets + 1;
                    Tcp.send conn (Bytes.of_string "+OK\n");
                    serve ()
                | None -> Tcp.close conn)
            | None ->
                Tcp.send conn (Bytes.of_string "-ERR bad length\n");
                serve ())
        | [ "GET"; key ] ->
            t.gets <- t.gets + 1;
            (match Hashtbl.find_opt t.store key with
            | Some v ->
                Tcp.send conn
                  (Bytes.of_string (Printf.sprintf "$%d\n" (Bytes.length v)));
                Tcp.send conn v
            | None -> Tcp.send conn (Bytes.of_string "$-1\n"));
            serve ()
        | [ "" ] -> serve ()
        | _ ->
            Tcp.send conn (Bytes.of_string "-ERR unknown command\n");
            serve ())
  in
  serve ()

let start tcp ?(port = 6379) ?(cpu_per_op = Time.us 2) ~sched () =
  let t = { store = Hashtbl.create 1024; cpu_per_op; sets = 0; gets = 0 } in
  let listener = Tcp.listen tcp ~port in
  Process.spawn sched ~daemon:true ~name:"kvstore-acceptor" (fun () ->
      let rec loop () =
        let conn = Tcp.accept listener in
        Process.spawn sched ~name:"kvstore-worker" (handle t conn);
        loop ()
      in
      loop ());
  t

let sets t = t.sets
let gets t = t.gets
let keys t = Hashtbl.length t.store
