open Kite_sim
open Kite_net

type t = {
  server_ip : Ipv4addr.t;
  pool_start : int32;
  pool_size : int;
  lease_time : int32;
  cpu_per_message : Time.span;
  leases : (string, int) Hashtbl.t;  (* client MAC -> pool offset *)
  mutable next_offset : int;
  mutable offers : int;
  mutable acks : int;
  mutable naks : int;
}

let ip_of_offset t off =
  Ipv4addr.of_int32 (Int32.add t.pool_start (Int32.of_int off))

let allocate t mac =
  match Hashtbl.find_opt t.leases mac with
  | Some off -> Some (ip_of_offset t off)
  | None ->
      if Hashtbl.length t.leases >= t.pool_size then None
      else begin
        let off = t.next_offset in
        t.next_offset <- (t.next_offset + 1) mod t.pool_size;
        Hashtbl.replace t.leases mac off;
        Some (ip_of_offset t off)
      end

let serve t stack sock () =
  let rec loop () =
    let src, sport, payload = Stack.udp_recv sock in
    if t.cpu_per_message > 0 then Process.sleep t.cpu_per_message;
    (match Dhcp_wire.decode payload with
    | Some msg -> (
        let mac = Macaddr.to_string msg.Dhcp_wire.chaddr in
        let send reply =
          (* Clients without an address yet are reached via broadcast. *)
          let dst =
            if Ipv4addr.equal src Ipv4addr.any then Ipv4addr.broadcast else src
          in
          let dport =
            if sport = 0 then Dhcp_wire.client_port else sport
          in
          Stack.udp_send stack sock ~dst ~dst_port:dport
            (Dhcp_wire.encode reply)
        in
        match msg.Dhcp_wire.message_type with
        | Dhcp_wire.Discover -> (
            match allocate t mac with
            | Some ip ->
                t.offers <- t.offers + 1;
                send
                  (Dhcp_wire.make ~op:`Boot_reply ~xid:msg.Dhcp_wire.xid
                     ~chaddr:msg.Dhcp_wire.chaddr
                     ~message_type:Dhcp_wire.Offer ~yiaddr:ip
                     ~siaddr:t.server_ip ~server_id:t.server_ip
                     ~lease_time:t.lease_time ())
            | None -> ())
        | Dhcp_wire.Request -> (
            let requested =
              match msg.Dhcp_wire.requested_ip with
              | Some ip -> Some ip
              | None ->
                  if Ipv4addr.equal msg.Dhcp_wire.ciaddr Ipv4addr.any then None
                  else Some msg.Dhcp_wire.ciaddr
            in
            let granted = allocate t mac in
            match (requested, granted) with
            | Some want, Some got when Ipv4addr.equal want got ->
                t.acks <- t.acks + 1;
                send
                  (Dhcp_wire.make ~op:`Boot_reply ~xid:msg.Dhcp_wire.xid
                     ~chaddr:msg.Dhcp_wire.chaddr ~message_type:Dhcp_wire.Ack
                     ~yiaddr:got ~siaddr:t.server_ip ~server_id:t.server_ip
                     ~lease_time:t.lease_time ())
            | _ ->
                t.naks <- t.naks + 1;
                send
                  (Dhcp_wire.make ~op:`Boot_reply ~xid:msg.Dhcp_wire.xid
                     ~chaddr:msg.Dhcp_wire.chaddr ~message_type:Dhcp_wire.Nak
                     ~server_id:t.server_ip ()))
        | Dhcp_wire.Release ->
            Hashtbl.remove t.leases mac
        | Dhcp_wire.Offer | Dhcp_wire.Ack | Dhcp_wire.Nak -> ())
    | None -> ());
    loop ()
  in
  loop ()

let start stack ~sched ~server_ip ~pool_start ~pool_size
    ?(lease_time = 3600l) ?(cpu_per_message = Time.us 25) () =
  let t =
    {
      server_ip;
      pool_start = Ipv4addr.to_int32 pool_start;
      pool_size;
      lease_time;
      cpu_per_message;
      leases = Hashtbl.create 64;
      next_offset = 0;
      offers = 0;
      acks = 0;
      naks = 0;
    }
  in
  let sock = Stack.udp_bind stack ~port:Dhcp_wire.server_port in
  Process.spawn sched ~daemon:true ~name:"dhcpd" (serve t stack sock);
  t

let offers t = t.offers
let acks t = t.acks
let naks t = t.naks
let active_leases t = Hashtbl.length t.leases
