open Kite_sim
open Kite_net

let row_size = 256

type backend =
  | Memory
  | Raw of {
      read : sector:int -> count:int -> Bytes.t;
      write : sector:int -> Bytes.t -> unit;
      buffer_pool_rows : int;
    }

type t = {
  backend : backend;
  tables : int;
  rows_per_table : int;
  cpu_per_query : Time.span;
  charge : Time.span -> unit;
  mem_rows : (int * int, Bytes.t) Hashtbl.t;  (* memory backend *)
  pool : (int * int, Bytes.t) Hashtbl.t;  (* buffer pool for Raw *)
  mutable pool_fifo : (int * int) list;  (* eviction order, coarse *)
  mutable queries : int;
  mutable pool_hits : int;
  mutable disk_reads : int;
}

(* Deterministic row content: sysbench fills c/pad with digit runs. *)
let synth_row table id =
  Bytes.init row_size (fun i -> Char.chr (0x30 + ((table + id + i) mod 10)))

let sector_of t table id =
  (* Each table is a contiguous region; two rows per sector. *)
  let rows_total = t.rows_per_table in
  (table * rows_total / 2) + (id / 2)

let fetch_row t table id =
  let key = (table, id) in
  match t.backend with
  | Memory -> (
      match Hashtbl.find_opt t.mem_rows key with
      | Some r -> r
      | None ->
          let r = synth_row table id in
          Hashtbl.replace t.mem_rows key r;
          r)
  | Raw { read; buffer_pool_rows; _ } -> (
      match Hashtbl.find_opt t.pool key with
      | Some r ->
          t.pool_hits <- t.pool_hits + 1;
          r
      | None ->
          let sector = sector_of t table id in
          let raw = read ~sector ~count:1 in
          t.disk_reads <- t.disk_reads + 1;
          let off = id mod 2 * row_size in
          let r = Bytes.sub raw off row_size in
          Hashtbl.replace t.pool key r;
          t.pool_fifo <- key :: t.pool_fifo;
          if Hashtbl.length t.pool > buffer_pool_rows then begin
            (* Evict the oldest half in one sweep to amortize. *)
            let keep = buffer_pool_rows / 2 in
            let kept = ref [] in
            List.iteri
              (fun i k ->
                if i < keep then kept := k :: !kept
                else Hashtbl.remove t.pool k)
              t.pool_fifo;
            t.pool_fifo <- List.rev !kept
          end;
          r)

let store_row t table id data =
  let key = (table, id) in
  match t.backend with
  | Memory -> Hashtbl.replace t.mem_rows key data
  | Raw { read; write; _ } ->
      let sector = sector_of t table id in
      let raw = read ~sector ~count:1 in
      let off = id mod 2 * row_size in
      Bytes.blit data 0 raw off row_size;
      write ~sector raw;
      Hashtbl.replace t.pool key data

let clamp t table id =
  let table = ((table mod t.tables) + t.tables) mod t.tables in
  let id = ((id mod t.rows_per_table) + t.rows_per_table) mod t.rows_per_table in
  (table, id)

let handle t conn () =
  let r = Line_reader.create conn in
  let reply s = Tcp.send conn (Bytes.of_string s) in
  let charge () =
    t.queries <- t.queries + 1;
    if t.cpu_per_query > 0 then t.charge t.cpu_per_query
  in
  let rec serve () =
    match Line_reader.line r with
    | None -> Tcp.close conn
    | Some cmd -> (
        match String.split_on_char ' ' (String.trim cmd) with
        | [ "BEGIN" ] | [ "COMMIT" ] ->
            reply "+OK\n";
            serve ()
        | [ "PSELECT"; tb; id ] ->
            charge ();
            let tb, id = clamp t (int_of_string tb) (int_of_string id) in
            let row = fetch_row t tb id in
            reply (Printf.sprintf "ROW %d\n" (Bytes.length row));
            Tcp.send conn row;
            serve ()
        | [ "RANGE"; tb; id; n ] ->
            charge ();
            let n = min 1000 (int_of_string n) in
            let tb, id = clamp t (int_of_string tb) (int_of_string id) in
            let rows =
              List.init n (fun i ->
                  fetch_row t tb ((id + i) mod t.rows_per_table))
            in
            let total = List.fold_left (fun a b -> a + Bytes.length b) 0 rows in
            reply (Printf.sprintf "ROWS %d %d\n" n total);
            List.iter (Tcp.send conn) rows;
            serve ()
        | [ ("SUM" | "ORDER"); tb; id; n ] ->
            charge ();
            let n = min 1000 (int_of_string n) in
            let tb, id = clamp t (int_of_string tb) (int_of_string id) in
            (* Aggregate over the range: touches every row, returns one
               value (sysbench's SUM/ORDER BY/DISTINCT queries). *)
            let acc = ref 0 in
            for i = 0 to n - 1 do
              let row = fetch_row t tb ((id + i) mod t.rows_per_table) in
              acc := !acc + Char.code (Bytes.get row 0)
            done;
            reply (Printf.sprintf "VAL %d\n" !acc);
            serve ()
        | [ "UPDATE"; tb; id; len ] -> (
            charge ();
            match Line_reader.exactly r (int_of_string len) with
            | Some data ->
                let tb, id = clamp t (int_of_string tb) (int_of_string id) in
                let row = Bytes.make row_size '\000' in
                Bytes.blit data 0 row 0 (min row_size (Bytes.length data));
                store_row t tb id row;
                reply "+OK\n";
                serve ()
            | None -> Tcp.close conn)
        | [ "" ] -> serve ()
        | _ ->
            reply "-ERR syntax\n";
            serve ())
  in
  serve ()

let start tcp ?(port = 3306) ?(cpu_per_query = Time.us 8)
    ?(charge = fun span -> Process.sleep span) ~backend ~tables
    ~rows_per_table ~sched () =
  let t =
    {
      backend;
      tables;
      rows_per_table;
      cpu_per_query;
      charge;
      mem_rows = Hashtbl.create 4096;
      pool = Hashtbl.create 4096;
      pool_fifo = [];
      queries = 0;
      pool_hits = 0;
      disk_reads = 0;
    }
  in
  let listener = Tcp.listen tcp ~port in
  Process.spawn sched ~daemon:true ~name:"sqldb-acceptor" (fun () ->
      let rec loop () =
        let conn = Tcp.accept listener in
        Process.spawn sched ~name:"sqldb-worker" (handle t conn);
        loop ()
      in
      loop ());
  t

let queries t = t.queries
let buffer_pool_hits t = t.pool_hits
let disk_reads t = t.disk_reads
