open Kite_sim
open Kite_net

type t = {
  sched : Process.sched;
  cpu_per_request : Time.span;
  mutable requests_served : int;
  mutable bytes_served : int;
  metrics : Kite_metrics.Registry.sink option;
}

let path_for size = Printf.sprintf "/data/%d" size

let body_size_of_path path =
  match String.split_on_char '/' path with
  | [ ""; "data"; n ] -> int_of_string_opt n
  | _ -> None

(* Read one request head (through the blank line); returns the request
   line or None at EOF. *)
let read_request conn =
  let buf = Buffer.create 128 in
  let rec go () =
    let n = Buffer.length buf in
    if n >= 4 && Buffer.sub buf (n - 4) 4 = "\r\n\r\n" then
      Some (Buffer.contents buf)
    else
      match Tcp.recv conn ~max:4096 with
      | Some data ->
          Buffer.add_bytes buf data;
          go ()
      | None -> None
  in
  go ()

let parse_request_line head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> (
      match String.split_on_char ' ' (String.sub head 0 eol) with
      | [ meth; path; _version ] -> Some (meth, path)
      | _ -> None)

let wants_keepalive head =
  (* HTTP/1.1 defaults to keep-alive unless the client closes. *)
  not
    (List.exists
       (fun line ->
         String.lowercase_ascii line = "connection: close")
       (String.split_on_char '\n' head |> List.map String.trim))

let respond conn ~status ~body ~keepalive =
  let headers =
    Printf.sprintf
      "HTTP/1.1 %s\r\nServer: kite-httpd\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n"
      status (Bytes.length body)
      (if keepalive then "keep-alive" else "close")
  in
  Tcp.send conn (Bytes.of_string headers);
  if Bytes.length body > 0 then Tcp.send conn body

let body_cache : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16

let body_of_size n =
  match Hashtbl.find_opt body_cache n with
  | Some b -> b
  | None ->
      let b = Bytes.init n (fun i -> Char.chr (0x20 + ((i * 31) mod 95))) in
      Hashtbl.add body_cache n b;
      b

let handle_connection t conn () =
  let rec serve () =
    match read_request conn with
    | None -> Tcp.close conn
    | Some head -> (
        if t.cpu_per_request > 0 then Process.sleep t.cpu_per_request;
        let keepalive = wants_keepalive head in
        (match parse_request_line head with
        | Some ("GET", "/metrics") -> (
            (* Prometheus exposition of every registry in the wired sink:
               one scrape covers all machines of the run.  Not counted in
               [requests_served] — that is the file-workload counter the
               benchmarks read. *)
            match t.metrics with
            | Some sink ->
                let body =
                  Bytes.of_string
                    (Kite_metrics.Registry.to_prometheus
                       (Kite_metrics.Registry.registries sink))
                in
                respond conn ~status:"200 OK" ~body ~keepalive
            | None ->
                respond conn ~status:"404 Not Found"
                  ~body:(Bytes.of_string "metrics not enabled") ~keepalive)
        | Some ("GET", path) -> (
            match body_size_of_path path with
            | Some size ->
                let body = body_of_size size in
                t.requests_served <- t.requests_served + 1;
                t.bytes_served <- t.bytes_served + size;
                respond conn ~status:"200 OK" ~body ~keepalive
            | None ->
                respond conn ~status:"404 Not Found"
                  ~body:(Bytes.of_string "not found") ~keepalive)
        | Some _ ->
            respond conn ~status:"405 Method Not Allowed" ~body:Bytes.empty
              ~keepalive
        | None ->
            respond conn ~status:"400 Bad Request" ~body:Bytes.empty
              ~keepalive:false);
        if keepalive then serve () else Tcp.close conn)
  in
  serve ()

let start tcp ?(port = 80) ?(cpu_per_request = Time.us 40) ?metrics ~sched ()
    =
  let t =
    { sched; cpu_per_request; requests_served = 0; bytes_served = 0; metrics }
  in
  (match metrics with
  | None -> ()
  | Some sink ->
      (* The server's own workload counters, polled at scrape time. *)
      let r =
        Kite_metrics.Registry.create_in sink
          ~name:(Printf.sprintf "httpd:%d" port)
      in
      Kite_metrics.Registry.counter_fn r "kite_httpd_requests_total"
        ~help:"File requests served (2xx responses to /data/<n>)." []
        (fun () -> t.requests_served);
      Kite_metrics.Registry.counter_fn r "kite_httpd_bytes_total"
        ~help:"Body bytes served by file requests." []
        (fun () -> t.bytes_served));
  let listener = Tcp.listen tcp ~port in
  Process.spawn sched ~daemon:true ~name:"httpd-acceptor" (fun () ->
      let rec accept_loop () =
        let conn = Tcp.accept listener in
        Process.spawn sched ~name:"httpd-worker" (handle_connection t conn);
        accept_loop ()
      in
      accept_loop ());
  t

let requests_served t = t.requests_served
let bytes_served t = t.bytes_served
