(** Client-side protocol drivers for the servers in this library.

    The closed-loop bench tools (ab, memtier, ...) each embed their own
    request loop; the swarm harness instead needs one request at a time
    behind a uniform face, so it can mix apps, sizes and drip-feed
    clients under a single traffic profile.  A {!session} is one live
    connection; [request] issues one operation of roughly [size] bytes
    and returns whether the server answered it correctly.

    [slow] asks for a drip-feed write: the request bytes go out in
    [drip_chunks] pieces, [drip_gap] apart — the slowloris shape that
    ties up a server accept slot for seconds.  Servers must keep serving
    everyone else while these dribble in. *)

type session = {
  request : size:int -> slow:bool -> bool;
  close : unit -> unit;
}

val httpd :
  Kite_net.Tcp.t ->
  dst:Kite_net.Ipv4addr.t ->
  ?port:int ->
  ?drip_chunks:int ->
  ?drip_gap:Kite_sim.Time.span ->
  unit ->
  session
(** [GET /data/<size>] over one keep-alive connection; checks the body
    arrives in full.  Defaults: port 80, 8 chunks, 2 ms. *)

val kvstore :
  Kite_net.Tcp.t ->
  dst:Kite_net.Ipv4addr.t ->
  ?port:int ->
  ?drip_chunks:int ->
  ?drip_gap:Kite_sim.Time.span ->
  key:string ->
  unit ->
  session
(** First request [SET key <size bytes>], subsequent ones [GET key];
    checks replies parse and the value comes back.  Default port 6379. *)

val memcache :
  Kite_net.Tcp.t ->
  dst:Kite_net.Ipv4addr.t ->
  ?port:int ->
  ?drip_chunks:int ->
  ?drip_gap:Kite_sim.Time.span ->
  key:string ->
  unit ->
  session
(** [set]/[get] text protocol, same shape as {!kvstore}.  Default port
    11211. *)

val sqldb :
  Kite_net.Tcp.t ->
  dst:Kite_net.Ipv4addr.t ->
  ?port:int ->
  ?drip_chunks:int ->
  ?drip_gap:Kite_sim.Time.span ->
  table:int ->
  row:int ->
  unit ->
  session
(** Point selects ([PSELECT]) walking rows from [row]; [size] scales up
    into [RANGE] scans for large requests.  Default port 3306. *)
