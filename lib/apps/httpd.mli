(** An Apache-style HTTP/1.1 file server (§5.3.3).

    Serves deterministically generated content: a request for
    ["/data/<n>"] returns [n] bytes.  Supports keep-alive, which
    ApacheBench uses to issue its 100 k requests over pooled
    connections. *)

type t

val start :
  Kite_net.Tcp.t ->
  ?port:int ->
  ?cpu_per_request:Kite_sim.Time.span ->
  ?metrics:Kite_metrics.Registry.sink ->
  sched:Kite_sim.Process.sched ->
  unit ->
  t
(** Listen (default port 80).  [cpu_per_request] models server-side
    processing (default 40 us, an httpd-ish figure).  When [metrics] is
    given, [GET /metrics] answers with the Prometheus text exposition of
    every registry in the sink (and the server registers its own
    [kite_httpd_*] counters there); without it the route is a 404. *)

val requests_served : t -> int
val bytes_served : t -> int

val path_for : int -> string
(** The URL path that yields a body of the given size. *)
