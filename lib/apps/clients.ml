open Kite_sim
open Kite_net

type session = { request : size:int -> slow:bool -> bool; close : unit -> unit }

(* Drip-feed write: the request bytes leave in small pieces with think
   gaps in between, holding the server's connection open the whole
   time.  The last chunk carries no trailing gap. *)
let send_req conn buf ~slow ~chunks ~gap =
  if not slow then Tcp.send conn buf
  else begin
    let n = Bytes.length buf in
    let chunks = max 1 (min chunks n) in
    let per = max 1 ((n + chunks - 1) / chunks) in
    let off = ref 0 in
    while !off < n do
      let len = min per (n - !off) in
      Tcp.send conn (Bytes.sub buf !off len);
      off := !off + len;
      if !off < n then Process.sleep gap
    done
  end

let close_quietly conn = try Tcp.close conn with _ -> ()

let httpd client_tcp ~dst ?(port = 80) ?(drip_chunks = 8)
    ?(drip_gap = Time.ms 2) () =
  let conn = Tcp.connect client_tcp ~dst ~port in
  let rd = Line_reader.create conn in
  let request ~size ~slow =
    try
      let req =
        Bytes.of_string
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: swarm\r\n\r\n"
             (Httpd.path_for size))
      in
      send_req conn req ~slow ~chunks:drip_chunks ~gap:drip_gap;
      let ok = ref false in
      let clen = ref 0 in
      (match Line_reader.line rd with
      | Some status -> ok := String.length status >= 12 && status.[9] = '2'
      | None -> ());
      let rec headers () =
        match Line_reader.line rd with
        | Some "\r" | Some "" -> true
        | Some line ->
            (match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.sub line 0 i)
                   = "content-length" ->
                clen :=
                  int_of_string
                    (String.trim
                       (String.sub line (i + 1) (String.length line - i - 1)))
            | _ -> ());
            headers ()
        | None -> false
      in
      let hdrs_ok = headers () in
      let body = if !clen > 0 then Line_reader.exactly rd !clen else Some Bytes.empty in
      !ok && hdrs_ok && body <> None
    with _ -> false
  in
  { request; close = (fun () -> close_quietly conn) }

let kvstore client_tcp ~dst ?(port = 6379) ?(drip_chunks = 8)
    ?(drip_gap = Time.ms 2) ~key () =
  let conn = Tcp.connect client_tcp ~dst ~port in
  let rd = Line_reader.create conn in
  let stored = ref false in
  let request ~size ~slow =
    try
      if not !stored then begin
        let size = max 1 size in
        let req = Buffer.create (size + 32) in
        Buffer.add_string req (Printf.sprintf "SET %s %d\n" key size);
        Buffer.add_string req (String.make size 'v');
        send_req conn (Buffer.to_bytes req) ~slow ~chunks:drip_chunks
          ~gap:drip_gap;
        match Line_reader.line rd with
        | Some "+OK" ->
            stored := true;
            true
        | _ -> false
      end
      else begin
        send_req conn
          (Bytes.of_string (Printf.sprintf "GET %s\n" key))
          ~slow ~chunks:drip_chunks ~gap:drip_gap;
        match Line_reader.line rd with
        | Some hdr when String.length hdr > 1 && hdr.[0] = '$' && hdr <> "$-1"
          ->
            let n = int_of_string (String.sub hdr 1 (String.length hdr - 1)) in
            Line_reader.exactly rd n <> None
        | _ -> false
      end
    with _ -> false
  in
  { request; close = (fun () -> close_quietly conn) }

let memcache client_tcp ~dst ?(port = 11211) ?(drip_chunks = 8)
    ?(drip_gap = Time.ms 2) ~key () =
  let conn = Tcp.connect client_tcp ~dst ~port in
  let rd = Line_reader.create conn in
  let stored = ref false in
  let request ~size ~slow =
    try
      if not !stored then begin
        let size = max 1 size in
        let req = Buffer.create (size + 48) in
        Buffer.add_string req (Printf.sprintf "set %s 0 0 %d\r\n" key size);
        Buffer.add_string req (String.make size 'v');
        Buffer.add_string req "\r\n";
        send_req conn (Buffer.to_bytes req) ~slow ~chunks:drip_chunks
          ~gap:drip_gap;
        match Line_reader.line rd with
        | Some hdr when String.trim hdr = "STORED" ->
            stored := true;
            true
        | _ -> false
      end
      else begin
        send_req conn
          (Bytes.of_string (Printf.sprintf "get %s\r\n" key))
          ~slow ~chunks:drip_chunks ~gap:drip_gap;
        match Line_reader.line rd with
        | Some hdr when String.length hdr >= 5 && String.sub hdr 0 5 = "VALUE"
          -> (
            match String.split_on_char ' ' (String.trim hdr) with
            | [ _; _; _; len ] ->
                let n = int_of_string len in
                (* data + CRLF, then the END line. *)
                Line_reader.exactly rd (n + 2) <> None
                && Line_reader.line rd <> None
            | _ -> false)
        | _ -> false
      end
    with _ -> false
  in
  { request; close = (fun () -> close_quietly conn) }

let sqldb client_tcp ~dst ?(port = 3306) ?(drip_chunks = 8)
    ?(drip_gap = Time.ms 2) ~table ~row () =
  let conn = Tcp.connect client_tcp ~dst ~port in
  let rd = Line_reader.create conn in
  let next = ref row in
  let request ~size ~slow =
    try
      let id = !next in
      incr next;
      (* Small requests are point selects; bigger ones become range
         scans covering roughly [size] bytes of rows. *)
      let n = max 1 (min 64 (size / Sqldb.row_size)) in
      let cmd =
        if n = 1 then Printf.sprintf "PSELECT %d %d\n" table id
        else Printf.sprintf "RANGE %d %d %d\n" table id n
      in
      send_req conn (Bytes.of_string cmd) ~slow ~chunks:drip_chunks
        ~gap:drip_gap;
      match Line_reader.line rd with
      | Some hdr -> (
          match String.split_on_char ' ' (String.trim hdr) with
          | [ "ROW"; len ] -> Line_reader.exactly rd (int_of_string len) <> None
          | [ "ROWS"; _; total ] ->
              Line_reader.exactly rd (int_of_string total) <> None
          | _ -> false)
      | None -> false
    with _ -> false
  in
  { request; close = (fun () -> close_quietly conn) }
