open Kite_sim
open Kite_net

type entry = { flags : int; data : Bytes.t }

type t = {
  store : (string, entry) Hashtbl.t;
  cpu_per_op : Time.span;
  mutable sets : int;
  mutable gets : int;
  mutable hits : int;
}

let crlf = "\r\n"

let handle t conn () =
  let r = Line_reader.create conn in
  let reply s = Tcp.send conn (Bytes.of_string s) in
  let rec serve () =
    match Line_reader.line r with
    | None -> Tcp.close conn
    | Some cmd -> (
        if t.cpu_per_op > 0 then Process.sleep t.cpu_per_op;
        match String.split_on_char ' ' (String.trim cmd) with
        | [ "set"; key; flags; _exptime; bytes ] -> (
            match (int_of_string_opt flags, int_of_string_opt bytes) with
            | Some flags, Some n -> (
                match Line_reader.exactly r (n + 2) (* data + CRLF *) with
                | Some raw ->
                    let data = Bytes.sub raw 0 n in
                    Hashtbl.replace t.store key { flags; data };
                    t.sets <- t.sets + 1;
                    reply ("STORED" ^ crlf);
                    serve ()
                | None -> Tcp.close conn)
            | _ ->
                reply ("CLIENT_ERROR bad command line" ^ crlf);
                serve ())
        | [ "get"; key ] ->
            t.gets <- t.gets + 1;
            (match Hashtbl.find_opt t.store key with
            | Some e ->
                t.hits <- t.hits + 1;
                reply
                  (Printf.sprintf "VALUE %s %d %d%s" key e.flags
                     (Bytes.length e.data) crlf);
                Tcp.send conn e.data;
                reply crlf;
                reply ("END" ^ crlf)
            | None -> reply ("END" ^ crlf));
            serve ()
        | [ "" ] -> serve ()
        | _ ->
            reply ("ERROR" ^ crlf);
            serve ())
  in
  serve ()

let start tcp ?(port = 11211) ?(cpu_per_op = Time.us 2) ~sched () =
  let t =
    { store = Hashtbl.create 1024; cpu_per_op; sets = 0; gets = 0; hits = 0 }
  in
  let listener = Tcp.listen tcp ~port in
  Process.spawn sched ~daemon:true ~name:"memcache-acceptor" (fun () ->
      let rec loop () =
        let conn = Tcp.accept listener in
        Process.spawn sched ~name:"memcache-worker" (handle t conn);
        loop ()
      in
      loop ());
  t

let sets t = t.sets
let gets t = t.gets
let hits t = t.hits
