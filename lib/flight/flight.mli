(** The always-on flight recorder: bounded cross-layer black box plus
    triggered incident snapshots.

    One {!t} per simulated machine holds a fixed-size ring of timestamped
    records tapped from the existing observability layers — completed
    {!Kite_trace.Trace} spans, {!Kite_fault.Fault} injections and notes,
    {!Kite_metrics.Registry} alert edges, {!Kite_check.Report} findings —
    through their single-observer hooks.  The ring keeps the most recent
    [limit] records and counts overwritten ones in {!dropped}: the same
    bounded, drops-counted discipline as [Trace.create ?limit], except a
    black box overwrites its oldest records instead of refusing new ones.

    A {e trigger} — driver-domain crash, health-probe alert edge, checker
    error, or an explicit request — freezes the ring into an
    {e incident snapshot}: the pre-trigger timeline, the records that
    arrive until the incident is sealed, a metrics summary delta between
    trigger and seal (including ring/grant occupancy gauges), the
    relevant xenstore subtree at the trigger instant, and the {!Slo}
    verdicts at seal.  Only one incident is open at a time; triggers
    during an open incident are recorded as evidence instead.

    Like every prior layer, disabled means free: the instrumented layers
    hold no reference to the recorder at all (the taps live inside the
    layers' own observer slots), and substrate hooks that call the
    recorder directly guard on a [Flight.t option]. *)

type record = {
  r_at : int;  (** simulated ns *)
  r_layer : string;  (** "trace", "fault", "metrics", "check", "flight" *)
  r_kind : string;  (** "span", "inject", "note", "alert", "finding", ... *)
  r_key : string;
  r_msg : string;
}

type t

val create :
  ?limit:int -> ?post_limit:int -> ?name:string -> now:(unit -> int) -> unit -> t
(** [limit] (default 4096) bounds the ring; [post_limit] (default 512)
    bounds the records an open incident captures after its trigger;
    [now] supplies simulated time for records from layers that carry no
    timestamp of their own (fault events, explicit marks). *)

val name : t -> string
val limit : t -> int

val records : t -> record list
(** Current ring contents, oldest first (at most [limit]). *)

val dropped : t -> int
(** Records overwritten since the ring filled — expected to grow on long
    runs; only post-trigger loss inside an incident is a defect (see
    {!audit}). *)

(** {1 Recording}

    The hot hooks.  Substrate code must hold a [Flight.t option] and
    guard the call, like every other layer. *)

val record :
  t -> layer:string -> kind:string -> key:string -> msg:string -> unit
(** Append one record stamped with [now ()]. *)

val mark : t -> what:string -> msg:string -> unit
(** [record] shorthand for explicit milestones
    (layer ["flight"], kind ["mark"]). *)

val crash : t -> domain:string -> reason:string -> unit
(** Record a driver-domain crash and fire the {!Crash} trigger.
    [Toolstack.crash_driver_domain] calls this before tearing down the
    domain's xenstore subtree, so the incident's store snapshot still
    sees it. *)

val restart : t -> domain:string -> msg:string -> unit
(** Record a driver-domain restart milestone (no trigger: the crash that
    preceded it already opened the incident). *)

(** {1 Triggers and incidents} *)

type trigger = Crash | Alert_edge | Finding | Manual

val trigger_name : trigger -> string

val trigger : t -> trigger -> reason:string -> unit
(** Open an incident now: snapshot the ring, the metrics scalars, and
    the xenstore subtree.  While an incident is open further triggers
    only add a ["trigger-suppressed"] record. *)

type incident

val incidents : t -> incident list
(** All incidents, oldest first (sealed and open). *)

val open_incident : t -> incident option

val seal_all : t -> unit
(** Seal the open incident (if any) at [now ()]: compute its metrics
    delta and SLO verdicts.  Also refreshes {!slo_evals}.  Scenario
    teardown calls this. *)

val incident_seq : incident -> int
val incident_at : incident -> int
val incident_trigger : incident -> trigger
val incident_reason : incident -> string
val incident_open : incident -> bool
val incident_sealed_at : incident -> int

val incident_pre : incident -> record list
(** The ring at the trigger instant, oldest first. *)

val incident_post : incident -> record list
(** Records captured after the trigger, up to [post_limit]. *)

val incident_timeline : incident -> record list
(** [pre @ post]: the correlated cross-layer timeline around the
    trigger. *)

val incident_truncated : incident -> int
(** Post-trigger records lost to [post_limit]; non-zero is reported by
    {!audit}. *)

val incident_delta : incident -> (string * (string * string) list * float * float) list
(** Metric instances whose scalar moved between trigger and seal, as
    (family, labels, at-trigger, at-seal). *)

val incident_store : incident -> (string * string) list
(** The captured xenstore subtree as (path, value) rows. *)

val incident_waterfall : incident -> string list
(** The critical-path latency waterfall captured at trigger time, one
    rendered line per (kind, stage) — empty unless {!tap_path} armed a
    path attribution engine before the trigger fired. *)

val incident_slos : incident -> Slo.eval list
(** SLO verdicts computed when the incident was sealed. *)

(** {1 SLOs} *)

val add_slo : t -> Slo.t -> unit
val slos : t -> Slo.t list

val slo_evals : t -> Slo.eval list
(** Verdicts from the last {!seal_all}. *)

(** {1 Layer taps}

    Each tap installs this recorder as the layer's observer (at most one
    per layer instance; installing replaces a previous tap). *)

val tap_trace : t -> Kite_trace.Trace.t -> unit
(** Completed spans become ["trace"/"span"] records at their end time. *)

val tap_fault : t -> Kite_fault.Fault.t -> unit
(** Injections and notes become ["fault"/"inject"] and ["fault"/"note"]
    records stamped with [now ()] (the fault layer has no clock). *)

val tap_metrics : t -> Kite_metrics.Registry.t -> unit
(** Alert edges become ["metrics"/"alert"] records {e and} fire the
    {!Alert_edge} trigger.  Also makes the registry the source for
    incident metrics deltas, exports [kite_flight_dropped_total]
    (ring-buffer overwrites — expected to grow on long runs) and a
    [kite_flight_dropping] probe that alerts only on post-trigger
    record loss inside the open incident (the actual defect). *)

val tap_path : t -> Kite_path.Path.t -> unit
(** Snapshot [p]'s latency waterfall into every future incident at
    trigger time (see {!incident_waterfall}). *)

val tap_report : t -> Kite_check.Report.t -> unit
(** Checker findings become ["check"/<severity>] records; an [Error]
    finding fires the {!Finding} trigger.  A report is shared by every
    checker of the run, so tap it from exactly one recorder. *)

val set_store_source : t -> (unit -> (string * string) list) -> unit
(** The xenstore-subtree dump captured into incident snapshots
    (default: none). *)

(** {1 Checker invariant} *)

val audit : t -> Kite_check.Report.t -> unit
(** End-of-run invariants: every incident sealed, no post-trigger records
    lost to [post_limit] (warnings), and the ring timeline monotone in
    simulated time (error). *)

(** {1 Run-wide default sink}

    [Scenario] consults this when building a testbed, exactly like the
    trace/fault/metrics sinks. *)

type sink

val sink : ?limit:int -> ?post_limit:int -> unit -> sink
val create_in : sink -> name:string -> now:(unit -> int) -> t
val flights : sink -> t list
val set_default : sink option -> unit
val default : unit -> sink option

(** {1 Export} *)

val record_to_json : record -> string
val incident_to_json : incident -> string
val to_json : t list -> string
