(** Service-level objectives over {!Kite_metrics.Registry} histograms.

    An SLO promises that a target quantile of a latency histogram stays
    at or below a threshold over an evaluation window.  The window is
    bounded by bucket snapshots: {!arm} copies the instance's current
    bucket counts and {!evaluate} diffs the live buckets against that
    baseline, so only observations recorded in between are scored and
    the instrumented hot paths are untouched.

    Burn rate follows the error-budget convention: a [q]-quantile SLO
    grants a budget of [1 - q] over-threshold observations; burn is the
    observed over-threshold fraction divided by that budget, so burn
    [<= 1.0] means the promise held and [10.0] means the window spent
    its budget ten times over (the restart-recovery blackout spike). *)

type t

val create :
  ?labels:(string * string) list ->
  name:string ->
  metric:string ->
  quantile:float ->
  threshold:float ->
  Kite_metrics.Registry.t ->
  t
(** [create ~name ~metric ~quantile ~threshold reg] targets the
    histogram instance [metric]/[labels] (default []) in [reg]:
    "the [quantile]-quantile of [metric] stays <= [threshold]".
    [quantile] uses the histogram convention [q ∈ (0, 1)] (e.g. 0.99
    for p99); [threshold] is in the histogram's observation unit.
    Raises [Invalid_argument] on an out-of-range quantile or a
    non-positive threshold.  The instance need not exist yet — an SLO
    armed before traffic simply sees an empty baseline. *)

val name : t -> string
val metric : t -> string
val target_quantile : t -> float
val threshold : t -> float

val arm : t -> at:int -> unit
(** Open an evaluation window at simulated time [at] (ns): snapshot the
    instance's bucket counts as the baseline.  A fresh SLO is armed at
    time 0 with an empty baseline, so arming is optional when the whole
    run is the window. *)

type eval = {
  ev_name : string;
  ev_metric : string;
  ev_q : float;
  ev_threshold : float;
  ev_from : int;  (** window start: the last {!arm} time *)
  ev_to : int;  (** window end: the {!evaluate} time *)
  ev_count : int;  (** observations recorded inside the window *)
  ev_actual : float;
      (** the target quantile over the window ([nan] when empty) *)
  ev_compliance : float;
      (** fraction of windowed observations <= threshold; [1.0] when the
          window is empty *)
  ev_burn : float;  (** [(1 - compliance) / (1 - q)] *)
  ev_met : bool;  (** [actual <= threshold] (vacuously true when empty) *)
}

val evaluate : t -> at:int -> eval
(** Score the window [\[arm time, at\]].  Pure with respect to the SLO:
    the baseline is kept, so repeated evaluations extend the same
    window. *)

val eval_to_json : eval -> string

(**/**)

(* JSON helpers shared with [Flight]. *)
val json_escape : string -> string
val json_num : float -> string

(**/**)
