(* The always-on flight recorder: one bounded ring of timestamped,
   cross-layer records per simulated machine, plus the trigger machinery
   that freezes the ring into incident snapshots.

   The recorder taps the existing observability layers through their
   single-observer hooks (Trace completed spans, Fault injections and
   notes, Registry alert edges, Report findings) and is therefore as
   cheap as they are: a layer without a tap installed pays nothing, and
   a machine without a recorder pays the usual [match None].  The ring
   keeps the most recent [limit] records, counting overwritten ones in
   [dropped] — the same "bounded, drops counted" discipline as
   [Trace.create ?limit], except a black box overwrites its oldest
   records instead of refusing new ones. *)

module Report = Kite_check.Report
module Trace = Kite_trace.Trace
module Fault = Kite_fault.Fault
module Registry = Kite_metrics.Registry

type record = {
  r_at : int;  (* sim ns *)
  r_layer : string;  (* "trace", "fault", "metrics", "check", "flight" *)
  r_kind : string;  (* "span", "inject", "note", "alert", "finding", ... *)
  r_key : string;
  r_msg : string;
}

let dummy_record = { r_at = 0; r_layer = ""; r_kind = ""; r_key = ""; r_msg = "" }

type trigger = Crash | Alert_edge | Finding | Manual

let trigger_name = function
  | Crash -> "crash"
  | Alert_edge -> "alert-edge"
  | Finding -> "finding"
  | Manual -> "manual"

type incident = {
  inc_seq : int;
  inc_at : int;
  inc_trigger : trigger;
  inc_reason : string;
  inc_pre : record list;  (* ring contents at trigger, oldest first *)
  mutable inc_post_rev : record list;
  mutable inc_post_n : int;
  mutable inc_post_dropped : int;
  mutable inc_open : bool;
  mutable inc_sealed_at : int;
  inc_metrics_base : (string * (string * string) list * float) list;
  mutable inc_delta : (string * (string * string) list * float * float) list;
  inc_store : (string * string) list;  (* (path, value) at trigger *)
  inc_waterfall : string list;  (* path-attribution waterfall at trigger *)
  mutable inc_slos : Slo.eval list;  (* evaluated at seal *)
}

type t = {
  fname : string;
  limit : int;
  post_limit : int;
  now : unit -> int;
  ring : record array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;  (* records overwritten after the ring filled *)
  mutable incidents_rev : incident list;
  mutable nincidents : int;
  mutable open_inc : incident option;
  mutable reg : Registry.t option;
  mutable path : Kite_path.Path.t option;
  mutable store_src : unit -> (string * string) list;
  mutable slos_rev : Slo.t list;
  mutable slo_evals : Slo.eval list;  (* from the last seal_all *)
}

let create ?(limit = 4096) ?(post_limit = 512) ?(name = "flight") ~now () =
  if limit <= 0 then invalid_arg "Flight.create: limit";
  {
    fname = name;
    limit;
    post_limit;
    now;
    ring = Array.make limit dummy_record;
    head = 0;
    len = 0;
    dropped = 0;
    incidents_rev = [];
    nincidents = 0;
    open_inc = None;
    reg = None;
    path = None;
    store_src = (fun () -> []);
    slos_rev = [];
    slo_evals = [];
  }

let name t = t.fname
let limit t = t.limit
let dropped t = t.dropped

let records t =
  let start = if t.len < t.limit then 0 else t.head in
  List.init t.len (fun k -> t.ring.((start + k) mod t.limit))

(* ------------------------------------------------------------------ *)
(* Recording (the hot hook)                                            *)
(* ------------------------------------------------------------------ *)

let push t r =
  t.ring.(t.head) <- r;
  t.head <- (t.head + 1) mod t.limit;
  if t.len < t.limit then t.len <- t.len + 1 else t.dropped <- t.dropped + 1;
  match t.open_inc with
  | None -> ()
  | Some inc ->
      if inc.inc_post_n < t.post_limit then begin
        inc.inc_post_rev <- r :: inc.inc_post_rev;
        inc.inc_post_n <- inc.inc_post_n + 1
      end
      else inc.inc_post_dropped <- inc.inc_post_dropped + 1

let record t ~layer ~kind ~key ~msg =
  push t { r_at = t.now (); r_layer = layer; r_kind = kind; r_key = key; r_msg = msg }

let mark t ~what ~msg = record t ~layer:"flight" ~kind:"mark" ~key:what ~msg

(* ------------------------------------------------------------------ *)
(* Triggers and incidents                                              *)
(* ------------------------------------------------------------------ *)

let metrics_read t =
  match t.reg with None -> [] | Some r -> Registry.read r

let trigger t tr ~reason =
  match t.open_inc with
  | Some _ ->
      (* One incident at a time: a trigger during an open incident is
         itself evidence, not a new snapshot. *)
      record t ~layer:"flight" ~kind:"trigger-suppressed"
        ~key:(trigger_name tr) ~msg:reason
  | None ->
      let at = t.now () in
      let inc =
        {
          inc_seq = t.nincidents;
          inc_at = at;
          inc_trigger = tr;
          inc_reason = reason;
          inc_pre = records t;
          inc_post_rev = [];
          inc_post_n = 0;
          inc_post_dropped = 0;
          inc_open = true;
          inc_sealed_at = at;
          inc_metrics_base = metrics_read t;
          inc_delta = [];
          inc_store = t.store_src ();
          inc_waterfall =
            (match t.path with
            | Some p -> Kite_path.Path.waterfall_lines p
            | None -> []);
          inc_slos = [];
        }
      in
      t.incidents_rev <- inc :: t.incidents_rev;
      t.nincidents <- t.nincidents + 1;
      t.open_inc <- Some inc;
      record t ~layer:"flight" ~kind:"incident" ~key:(trigger_name tr)
        ~msg:reason

let crash t ~domain ~reason =
  record t ~layer:"flight" ~kind:"crash" ~key:domain ~msg:reason;
  trigger t Crash ~reason:(domain ^ ": " ^ reason)

let restart t ~domain ~msg =
  record t ~layer:"flight" ~kind:"restart" ~key:domain ~msg

let seal_incident t inc ~at =
  if inc.inc_open then begin
    inc.inc_open <- false;
    inc.inc_sealed_at <- at;
    (* Metrics summary delta: every instance whose scalar moved between
       trigger and seal (grant/evtchn occupancy, ring gauges, counters —
       everything the registry reads). *)
    let after = metrics_read t in
    inc.inc_delta <-
      List.filter_map
        (fun (fam, labels, v1) ->
          let v0 =
            match
              List.find_opt
                (fun (f, l, _) -> f = fam && l = labels)
                inc.inc_metrics_base
            with
            | Some (_, _, v) -> v
            | None -> 0.0
          in
          if v1 <> v0 then Some (fam, labels, v0, v1) else None)
        after;
    inc.inc_slos <- List.rev_map (fun s -> Slo.evaluate s ~at) t.slos_rev;
    match t.open_inc with
    | Some i when i == inc -> t.open_inc <- None
    | _ -> ()
  end

let seal_all t =
  let at = t.now () in
  (match t.open_inc with None -> () | Some inc -> seal_incident t inc ~at);
  t.slo_evals <- List.rev_map (fun s -> Slo.evaluate s ~at) t.slos_rev

let incidents t = List.rev t.incidents_rev
let open_incident t = t.open_inc

(* ------------------------------------------------------------------ *)
(* Incident accessors                                                  *)
(* ------------------------------------------------------------------ *)

let incident_seq i = i.inc_seq
let incident_at i = i.inc_at
let incident_trigger i = i.inc_trigger
let incident_reason i = i.inc_reason
let incident_open i = i.inc_open
let incident_sealed_at i = i.inc_sealed_at
let incident_pre i = i.inc_pre
let incident_post i = List.rev i.inc_post_rev
let incident_timeline i = i.inc_pre @ List.rev i.inc_post_rev
let incident_truncated i = i.inc_post_dropped
let incident_delta i = i.inc_delta
let incident_store i = i.inc_store
let incident_waterfall i = i.inc_waterfall
let incident_slos i = i.inc_slos

(* ------------------------------------------------------------------ *)
(* SLOs                                                                *)
(* ------------------------------------------------------------------ *)

let add_slo t s = t.slos_rev <- s :: t.slos_rev
let slos t = List.rev t.slos_rev
let slo_evals t = t.slo_evals

(* ------------------------------------------------------------------ *)
(* Layer taps                                                          *)
(* ------------------------------------------------------------------ *)

let tap_trace t tr =
  Trace.set_span_observer tr
    (Some
       (fun sp ->
         push t
           {
             r_at = sp.Trace.span_end_at;
             r_layer = "trace";
             r_kind = "span";
             r_key =
               Printf.sprintf "%s %s#%d" sp.Trace.span_kind sp.Trace.span_key
                 sp.Trace.span_id;
             r_msg =
               Printf.sprintf "%d ns over %d stage(s)"
                 (sp.Trace.span_end_at - sp.Trace.span_begin_at)
                 (List.length sp.Trace.span_stages);
           }))

let tap_fault t f =
  Fault.set_observer f
    (Some
       (function
       | Fault.Injected (p, key, n) ->
           record t ~layer:"fault" ~kind:"inject" ~key
             ~msg:(Printf.sprintf "%s #%d" (Fault.point_name p) n)
       | Fault.Noted (what, key) ->
           record t ~layer:"fault" ~kind:"note" ~key:what ~msg:key))

let tap_metrics t r =
  t.reg <- Some r;
  Registry.counter_fn r "kite_flight_dropped_total"
    [ ("flight", t.fname) ]
    (fun () -> t.dropped);
  Registry.probe r ~name:"kite_flight_dropping"
    [ ("flight", t.fname) ]
    (fun () ->
      match t.open_inc with
      | Some inc when inc.inc_post_dropped > 0 ->
          Registry.Alert
            (Printf.sprintf "%d post-trigger record(s) lost in open incident"
               inc.inc_post_dropped)
      | _ -> Registry.Healthy);
  Registry.set_alert_observer r
    (Some
       (fun a ->
         push t
           {
             r_at = a.Registry.alert_at;
             r_layer = "metrics";
             r_kind = "alert";
             r_key = a.Registry.alert_probe;
             r_msg = a.Registry.alert_msg;
           };
         trigger t Alert_edge
           ~reason:(a.Registry.alert_probe ^ ": " ^ a.Registry.alert_msg)))

let tap_path t p = t.path <- Some p

let tap_report t rep =
  Report.set_observer rep
    (Some
       (fun f ->
         record t ~layer:"check"
           ~kind:(Report.severity_to_string f.Report.severity)
           ~key:(f.Report.subsystem ^ "/" ^ f.Report.rule)
           ~msg:f.Report.message;
         if f.Report.severity = Report.Error then
           trigger t Finding
             ~reason:(f.Report.subsystem ^ "/" ^ f.Report.rule ^ ": "
                      ^ f.Report.message)))

let set_store_source t fn = t.store_src <- fn

(* ------------------------------------------------------------------ *)
(* Checker invariant                                                   *)
(* ------------------------------------------------------------------ *)

let audit t report =
  let fail severity rule message =
    Report.add report
      {
        Report.severity;
        subsystem = "flight";
        rule;
        provenance = t.fname;
        message;
      }
  in
  List.iter
    (fun inc ->
      if inc.inc_post_dropped > 0 then
        fail Report.Warning "incident-truncated"
          (Printf.sprintf
             "incident #%d (%s) lost %d post-trigger record(s): raise \
              post_limit or seal sooner"
             inc.inc_seq (trigger_name inc.inc_trigger) inc.inc_post_dropped);
      if inc.inc_open then
        fail Report.Warning "incident-unsealed"
          (Printf.sprintf "incident #%d (%s) was never sealed" inc.inc_seq
             (trigger_name inc.inc_trigger)))
    (incidents t);
  (* The ring is appended in call order against one simulated clock, so
     a backwards timestamp means a tap fed a stale time. *)
  ignore
    (List.fold_left
       (fun prev r ->
         if r.r_at < prev then
           fail Report.Error "timeline-order"
             (Printf.sprintf "record %s/%s at %d ns after %d ns" r.r_layer
                r.r_kind r.r_at prev);
         max prev r.r_at)
       min_int (records t))

(* ------------------------------------------------------------------ *)
(* Run-wide default sink                                               *)
(* ------------------------------------------------------------------ *)

type sink = {
  s_limit : int option;
  s_post_limit : int option;
  mutable members : t list;  (* reversed *)
}

let sink ?limit ?post_limit () =
  { s_limit = limit; s_post_limit = post_limit; members = [] }

let create_in s ~name ~now =
  let t = create ?limit:s.s_limit ?post_limit:s.s_post_limit ~name ~now () in
  s.members <- t :: s.members;
  t

let flights s = List.rev s.members

let default_ref : sink option ref = ref None
let set_default v = default_ref := v
let default () = !default_ref

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let json_escape = Slo.json_escape
let json_num = Slo.json_num

let record_to_json r =
  Printf.sprintf
    {|{"at":%d,"layer":"%s","kind":"%s","key":"%s","msg":"%s"}|} r.r_at
    (json_escape r.r_layer) (json_escape r.r_kind) (json_escape r.r_key)
    (json_escape r.r_msg)

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
         labels)
  ^ "}"

let incident_to_json inc =
  let timeline =
    String.concat "," (List.map record_to_json (incident_timeline inc))
  in
  let delta =
    String.concat ","
      (List.map
         (fun (fam, labels, v0, v1) ->
           Printf.sprintf
             {|{"family":"%s","labels":%s,"before":%s,"after":%s}|}
             (json_escape fam) (labels_json labels) (json_num v0)
             (json_num v1))
         inc.inc_delta)
  in
  let store =
    String.concat ","
      (List.map
         (fun (p, v) ->
           Printf.sprintf {|{"path":"%s","value":"%s"}|} (json_escape p)
             (json_escape v))
         inc.inc_store)
  in
  let slos = String.concat "," (List.map Slo.eval_to_json inc.inc_slos) in
  let waterfall =
    String.concat ","
      (List.map
         (fun l -> Printf.sprintf {|"%s"|} (json_escape l))
         inc.inc_waterfall)
  in
  Printf.sprintf
    {|{"seq":%d,"at":%d,"trigger":"%s","reason":"%s","open":%b,"sealed_at":%d,"truncated":%d,"timeline":[%s],"metrics_delta":[%s],"xenstore":[%s],"waterfall":[%s],"slos":[%s]}|}
    inc.inc_seq inc.inc_at
    (trigger_name inc.inc_trigger)
    (json_escape inc.inc_reason) inc.inc_open inc.inc_sealed_at
    inc.inc_post_dropped timeline delta store waterfall slos

let to_json ts =
  let one t =
    Printf.sprintf
      {|{"name":"%s","limit":%d,"records":%d,"dropped":%d,"incidents":[%s],"slos":[%s]}|}
      (json_escape t.fname) t.limit t.len t.dropped
      (String.concat "," (List.map incident_to_json (incidents t)))
      (String.concat "," (List.map Slo.eval_to_json t.slo_evals))
  in
  "[" ^ String.concat "," (List.map one ts) ^ "]"
