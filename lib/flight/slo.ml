(* Service-level objectives over live metric histograms.

   An SLO names a histogram instance in a Registry and promises that a
   target quantile of the observations recorded inside an evaluation
   window stays at or below a threshold.  The window is delimited by
   bucket snapshots: [arm] copies the instance's current bucket counts,
   and [evaluate] diffs the live buckets against that baseline, so only
   the observations made in between are scored.  This keeps the hot path
   untouched — the instrumented layers keep observing into the same
   histogram; all SLO work happens at arm/evaluate time. *)

module Registry = Kite_metrics.Registry

type t = {
  slo_name : string;
  reg : Registry.t;
  metric : string;
  labels : (string * string) list;
  q : float;  (* target quantile, in (0, 1) *)
  threshold : float;  (* same unit as the histogram's observations *)
  mutable armed_at : int;  (* sim ns of the last [arm] *)
  mutable base : (float * float * int) list;  (* buckets at arm *)
}

let create ?(labels = []) ~name ~metric ~quantile ~threshold reg =
  if quantile <= 0.0 || quantile >= 1.0 then
    invalid_arg "Slo.create: quantile must lie in (0, 1)";
  if threshold <= 0.0 then invalid_arg "Slo.create: threshold must be > 0";
  {
    slo_name = name;
    reg;
    metric;
    labels;
    q = quantile;
    threshold;
    armed_at = 0;
    base = [];
  }

let name t = t.slo_name
let metric t = t.metric
let target_quantile t = t.q
let threshold t = t.threshold

let live_buckets t =
  match Registry.hbuckets t.reg t.metric t.labels with
  | Some bs -> bs
  | None -> []

let arm t ~at =
  t.armed_at <- at;
  t.base <- live_buckets t

(* The window's own distribution: per-bucket counts now minus counts at
   arm (buckets only ever gain observations, so the diff is the window;
   clamp guards a re-created instance). *)
let window_buckets t =
  List.filter_map
    (fun (lo, hi, c) ->
      let c0 =
        match List.find_opt (fun (l, h, _) -> l = lo && h = hi) t.base with
        | Some (_, _, c0) -> c0
        | None -> 0
      in
      let d = max 0 (c - c0) in
      if d = 0 then None else Some (lo, hi, d))
    (live_buckets t)

(* Same interpolation as [Kite_stats.Histogram.quantile], over the
   diffed window buckets. *)
let quantile_of_buckets bs q =
  let n = List.fold_left (fun a (_, _, c) -> a + c) 0 bs in
  if n = 0 then nan
  else
    let target = q *. float_of_int n in
    let rec walk seen = function
      | [] -> nan
      | [ (lo, hi, c) ] ->
          let into = Float.max 0.0 (target -. float_of_int seen) in
          lo +. ((hi -. lo) *. Float.min 1.0 (into /. float_of_int c))
      | (lo, hi, c) :: rest ->
          if float_of_int (seen + c) >= target then
            let into = Float.max 0.0 (target -. float_of_int seen) in
            lo +. ((hi -. lo) *. (into /. float_of_int c))
          else walk (seen + c) rest
    in
    walk 0 bs

(* Fraction of windowed observations at or below the threshold, with
   linear interpolation inside the straddling bucket. *)
let compliance_of_buckets bs threshold =
  let n = List.fold_left (fun a (_, _, c) -> a + c) 0 bs in
  if n = 0 then 1.0
  else
    let good =
      List.fold_left
        (fun acc (lo, hi, c) ->
          if hi <= threshold then acc +. float_of_int c
          else if lo >= threshold then acc
          else acc +. (float_of_int c *. ((threshold -. lo) /. (hi -. lo))))
        0.0 bs
    in
    good /. float_of_int n

type eval = {
  ev_name : string;
  ev_metric : string;
  ev_q : float;
  ev_threshold : float;
  ev_from : int;
  ev_to : int;
  ev_count : int;
  ev_actual : float;  (* nan when the window saw no observations *)
  ev_compliance : float;
  ev_burn : float;
  ev_met : bool;
}

let evaluate t ~at =
  let bs = window_buckets t in
  let count = List.fold_left (fun a (_, _, c) -> a + c) 0 bs in
  let actual = quantile_of_buckets bs t.q in
  let compliance = compliance_of_buckets bs t.threshold in
  (* Burn rate in the error-budget sense: the budget is the (1 - q)
     fraction of observations allowed over threshold; burn 1.0 spends it
     exactly, > 1.0 overspends.  [met] is the quantile promise itself. *)
  let burn = (1.0 -. compliance) /. (1.0 -. t.q) in
  {
    ev_name = t.slo_name;
    ev_metric = t.metric;
    ev_q = t.q;
    ev_threshold = t.threshold;
    ev_from = t.armed_at;
    ev_to = at;
    ev_count = count;
    ev_actual = actual;
    ev_compliance = compliance;
    ev_burn = burn;
    ev_met = (count = 0 || actual <= t.threshold);
  }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let eval_to_json e =
  Printf.sprintf
    {|{"name":"%s","metric":"%s","quantile":%s,"threshold":%s,"from":%d,"to":%d,"count":%d,"actual":%s,"compliance":%s,"burn":%s,"met":%b}|}
    (json_escape e.ev_name) (json_escape e.ev_metric) (json_num e.ev_q)
    (json_num e.ev_threshold) e.ev_from e.ev_to e.ev_count
    (json_num e.ev_actual) (json_num e.ev_compliance) (json_num e.ev_burn)
    e.ev_met
