(* Syntactic policy checks over the codebase, using the compiler's own
   parser (compiler-libs).  See lint.mli for the rule inventory.  The
   walker is a single Ast_iterator pass per file carrying two pieces of
   state: whether the current expression is lexically inside a guard
   (a [Some]-pattern case or an [if ... active () then ...] branch), and
   per-file tallies of paired-resource calls for the pairing rules. *)

type config = {
  policed_modules : string list;
  skip_basenames : string list;
}

let default_config =
  {
    policed_modules =
      [ "Check"; "Trace"; "Fault"; "Race"; "Registry"; "Flight"; "Path" ];
    (* The detector implementations call their own internals freely;
       linting them for guards would be circular. *)
    skip_basenames =
      [
        "check.ml"; "report.ml"; "trace.ml"; "fault.ml"; "race.ml";
        "registry.ml"; "flight.ml"; "slo.ml"; "path.ml"; "lint.ml";
      ];
  }

(* Hot hook functions: anything here, called through a policed module
   path, must be under a guard so it costs nothing when no sink is
   attached.  Cold calls (create/attach/set_default/...) and
   self-guarding calls (Race.active, Race.scoped_*: one ref read when
   disabled) are deliberately absent. *)
let policed_functions =
  [
    (* Kite_check.Check *)
    "ring_push"; "ring_publish"; "ring_take"; "ring_final_check";
    "mq_claim"; "mq_release";
    "grant_granted"; "grant_end"; "grant_map"; "grant_unmap"; "grant_copy";
    "proc_spawned"; "proc_enter"; "proc_leave"; "proc_blocked";
    "proc_exited";
    "watch_added"; "watch_removed"; "tx_opened"; "tx_closed";
    "xenbus_bad_state"; "xenbus_bad_transition"; "write_denied";
    (* Kite_trace.Trace *)
    "span_begin"; "span_hop"; "span_end"; "charge"; "cpu_work"; "driver";
    "evtchn_send"; "evtchn_deliver";
    (* Kite_fault.Fault *)
    "fire"; "note";
    (* Kite_race.Race *)
    "proc_register"; "irq_enter"; "irq_leave"; "hb_release"; "hb_acquire";
    "xs_read"; "xs_write"; "read_acc"; "write_acc";
    (* Kite_metrics.Registry *)
    "observe"; "sample";
    (* Kite_flight.Flight *)
    "record"; "mark"; "crash"; "restart";
    (* Kite_path.Path — proc_enter/proc_leave are shared with Check above *)
    "cpu_sample"; "record_span";
  ]

let policed_fn_tbl = Hashtbl.create 64

let () =
  List.iter (fun f -> Hashtbl.replace policed_fn_tbl f ()) policed_functions

(* Last one or two components of a (possibly deep) module path:
   [Kite_check.Check.ring_push] and [Check.ring_push] both yield
   [Some ("Check", "ring_push")]. *)
let split_path lid =
  match lid with
  | Longident.Ldot (Longident.Lident m, f) -> Some (m, f)
  | Longident.Ldot (Longident.Ldot (_, m), f) -> Some (m, f)
  | _ -> None

exception Found

let mentions_active expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> (
              match Longident.flatten txt with
              | parts when List.exists (String.equal "active") parts ->
                  raise Found
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it expr;
    false
  with Found -> true

let rec pattern_has_some p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_construct ({ txt = Longident.Lident "Some"; _ }, _) ->
      true
  | Parsetree.Ppat_tuple ps -> List.exists pattern_has_some ps
  | Parsetree.Ppat_alias (p, _) | Parsetree.Ppat_constraint (p, _) ->
      pattern_has_some p
  | Parsetree.Ppat_or (a, b) -> pattern_has_some a && pattern_has_some b
  | _ -> false

type facts = {
  mutable grant_access : bool;
  mutable end_access : bool;
  mutable grant_map : bool;
  mutable grant_unmap : bool;
  mutable watch : bool;
  mutable unwatch : bool;
  mutable hv_create : bool;
  mutable attach_sink : bool;
  mutable teardown_reg : bool;
}

let fresh_facts () =
  {
    grant_access = false;
    end_access = false;
    grant_map = false;
    grant_unmap = false;
    watch = false;
    unwatch = false;
    hv_create = false;
    attach_sink = false;
    teardown_reg = false;
  }

let note_ident facts lid =
  (match split_path lid with
  | Some ("Grant_table", "grant_access") -> facts.grant_access <- true
  | Some ("Grant_table", "end_access") -> facts.end_access <- true
  | Some ("Grant_table", ("map_one" | "map_many")) -> facts.grant_map <- true
  | Some ("Grant_table", ("unmap_one" | "unmap_many")) ->
      facts.grant_unmap <- true
  | Some (("Xenbus" | "Xenstore"), "watch") -> facts.watch <- true
  | Some (("Xenbus" | "Xenstore"), "unwatch") -> facts.unwatch <- true
  | Some ("Hypervisor", "create") -> facts.hv_create <- true
  | _ -> ());
  match Longident.flatten lid with
  | parts ->
      List.iter
        (fun p ->
          if String.length p >= 7 && String.sub p 0 7 = "attach_" then
            facts.attach_sink <- true;
          if p = "teardowns" || p = "register_teardown" then
            facts.teardown_reg <- true)
        parts

let emit report ~rule ~file ~line msg =
  Kite_check.Report.add report
    {
      Kite_check.Report.severity = Kite_check.Report.Error;
      subsystem = "lint";
      rule;
      provenance = file;
      message =
        (if line > 0 then Printf.sprintf "%s:%d: %s" file line msg
         else Printf.sprintf "%s: %s" file msg);
    }

let lint_structure config report ~file ~check_guards str =
  let facts = fresh_facts () in
  let guarded = ref false in
  let with_guard f =
    let saved = !guarded in
    guarded := true;
    f ();
    guarded := saved
  in
  let has_guard_attr attrs =
    List.exists
      (fun a -> a.Parsetree.attr_name.Location.txt = "lint.guarded")
      attrs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          if has_guard_attr vb.Parsetree.pvb_attributes then
            with_guard (fun () ->
                Ast_iterator.default_iterator.value_binding self vb)
          else Ast_iterator.default_iterator.value_binding self vb);
      case =
        (fun self c ->
          if pattern_has_some c.Parsetree.pc_lhs then
            with_guard (fun () -> Ast_iterator.default_iterator.case self c)
          else Ast_iterator.default_iterator.case self c);
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | _ when has_guard_attr e.Parsetree.pexp_attributes ->
              with_guard (fun () ->
                  Ast_iterator.default_iterator.expr self e)
          | Parsetree.Pexp_ifthenelse (cond, then_, else_)
            when mentions_active cond ->
              self.Ast_iterator.expr self cond;
              with_guard (fun () ->
                  self.Ast_iterator.expr self then_;
                  Option.iter (self.Ast_iterator.expr self) else_)
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, _) ->
              note_ident facts txt;
              (match split_path txt with
              | Some (m, f)
                when check_guards && (not !guarded)
                     && List.mem m config.policed_modules
                     && Hashtbl.mem policed_fn_tbl f ->
                  emit report ~rule:"lint-hook-unguarded" ~file
                    ~line:loc.Location.loc_start.Lexing.pos_lnum
                    (Printf.sprintf
                       "%s.%s called outside a Some-guard or active() \
                        check; hot hooks must be free when disabled"
                       m f)
              | _ -> ());
              Ast_iterator.default_iterator.expr self e
          | Parsetree.Pexp_ident { txt; _ } ->
              note_ident facts txt;
              Ast_iterator.default_iterator.expr self e
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure it str;
  if facts.grant_access && not facts.end_access then
    emit report ~rule:"lint-grant-unpaired" ~file ~line:0
      "calls Grant_table.grant_access but never Grant_table.end_access";
  if facts.grant_map && not facts.grant_unmap then
    emit report ~rule:"lint-grant-unpaired" ~file ~line:0
      "calls Grant_table.map_one/map_many but never unmap_one/unmap_many";
  if facts.watch && not facts.unwatch then
    emit report ~rule:"lint-watch-unpaired" ~file ~line:0
      "registers a xenstore watch but never unwatches";
  if facts.hv_create && facts.attach_sink && not facts.teardown_reg then
    emit report ~rule:"lint-teardown-missing" ~file ~line:0
      "builds a hypervisor and attaches sinks but registers no teardown"

let lint_file ?(config = default_config) report path =
  let base = Filename.basename path in
  let check_guards = not (List.mem base config.skip_basenames) in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      emit report ~rule:"lint-parse-error" ~file:path ~line:0 msg
  | content -> (
      let lexbuf = Lexing.from_string content in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | str -> lint_structure config report ~file:path ~check_guards str
      | exception exn ->
          emit report ~rule:"lint-parse-error" ~file:path ~line:0
            (Printexc.to_string exn))

let lint_paths ?(config = default_config) report paths =
  let linted = ref 0 in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry -> walk (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then begin
      lint_file ~config report path;
      incr linted
    end
  in
  List.iter walk paths;
  !linted
