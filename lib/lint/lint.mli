(** Source lint for the instrumentation discipline the simulator relies
    on.  Parses [.ml] files with the compiler's own frontend and checks
    syntactic policies that the type checker cannot: hot observability
    hooks must be guarded so they are free when no sink is attached,
    grant maps must have a matching unmap, xenstore watches a matching
    unwatch, and testbed builders must register a teardown.

    The rules are deliberately lexical (per-file pairing, guard shapes)
    rather than a dataflow analysis: the codebase uses a small set of
    idioms — [match t.sink with Some s -> hook s ... | None -> ()] and
    [if Race.active () then ...] — and the lint enforces that those
    idioms are the only way hot hooks get called.

    Escape hatch: a [let[@lint.guarded] f ...] binding (or an expression
    carrying the attribute) is treated as guarded — for helpers that are
    only ever reached through a guard the lint cannot see, e.g. the
    memoizing per-sink registration helpers in [Process.spawn]. *)

type config = {
  policed_modules : string list;
      (** Last module component of hook call paths to police
          (default ["Check"; "Trace"; "Fault"; "Race"; "Registry";
          "Flight"; "Path"]). *)
  skip_basenames : string list;
      (** Files excluded from the hook-guard rule — the detector
          implementations themselves. *)
}

val default_config : config

val lint_file : ?config:config -> Kite_check.Report.t -> string -> unit
(** Parse one [.ml] file and append any findings to the report.  A file
    that fails to parse yields a [lint-parse-error] finding rather than
    an exception. *)

val lint_paths : ?config:config -> Kite_check.Report.t -> string list -> int
(** Walk directories recursively (or take files as-is), lint every
    [.ml] file found, and return the number of files linted.  Findings
    accumulate in the report under subsystem ["lint"] with rules
    [lint-hook-unguarded], [lint-grant-unpaired], [lint-watch-unpaired]
    and [lint-teardown-missing]. *)
