(** Physical NIC model (the paper's Intel 82599ES 10GbE).

    Each NIC has a transmit queue drained at line rate by a transmitter
    process; a frame's service time is its serialization delay plus a
    fixed per-packet processing overhead.  Two NICs are joined by a
    full-duplex link with a propagation delay.  When the transmit queue is
    full, frames are dropped — which is where nuttcp's UDP loss comes
    from when offered load exceeds capacity. *)

type t

val create :
  Kite_sim.Process.sched ->
  Kite_sim.Metrics.t ->
  name:string ->
  ?line_rate_gbps:float ->
  ?per_packet:Kite_sim.Time.span ->
  ?queue_limit:int ->
  unit ->
  t
(** Defaults: 10 Gbps, 100 ns per packet, 1024-frame queue. *)

val name : t -> string

val connect : t -> t -> propagation:Kite_sim.Time.span -> unit
(** Join two NICs with a full-duplex cable (the paper's direct SFP+
    link).  Raises [Invalid_argument] if either end is already wired. *)

val set_rx_handler : t -> (Bytes.t -> unit) -> unit
(** Invoked in interrupt context for every arriving frame. *)

exception Transient_error of string
(** A retryable transmit failure, produced only by an attached fault
    injector ([Device_io]; key = device name). *)

val set_fault : t -> Kite_fault.Fault.t option -> unit

val set_impair : t -> Kite_net.Impair.t option -> unit
(** Attach (or clear) a link impairment on this NIC's transmit
    direction.  Free when unused: the hot path is one [match] on [None].
    A frame held for reordering is released right behind the next
    delivered frame; clearing the impairment discards any held frame. *)

val impair : t -> Kite_net.Impair.t option

val transmit : t -> Bytes.t -> unit
(** Enqueue a frame for transmission.  Never blocks; drops when the queue
    is full. *)

val tx_packets : t -> int
val rx_packets : t -> int
val tx_bytes : t -> int
val rx_bytes : t -> int
val dropped : t -> int

val line_rate_gbps : t -> float
