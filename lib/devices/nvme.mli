(** NVMe SSD model (the paper's Samsung 970 EVO Plus).

    Sector-addressable sparse storage with a queued service model: a pool
    of [queue_depth] workers serves submitted commands; a command's
    service time is a fixed base latency plus a bandwidth-proportional
    transfer time.  Reads of never-written sectors return zeroes, like a
    fresh drive. *)

type t

val sector_size : int
(** 512 bytes. *)

val create :
  Kite_sim.Process.sched ->
  Kite_sim.Metrics.t ->
  name:string ->
  ?capacity_sectors:int ->
  ?queue_depth:int ->
  ?read_base:Kite_sim.Time.span ->
  ?write_base:Kite_sim.Time.span ->
  ?cmd_overhead:Kite_sim.Time.span ->
  ?bandwidth_mbps:float ->
  unit ->
  t
(** Defaults: 500 GB, queue depth 32, 25 us read / 30 us write base
    latency, 4 us serialized controller work per command, 1500 MB/s
    sustained bandwidth.  Base latencies overlap across the queue;
    per-command work and transfer time serialize on the media. *)

val name : t -> string
val capacity_sectors : t -> int

exception Out_of_range of string

exception Transient_error of string
(** A retryable command failure, produced only by an attached fault
    injector ([Device_io]; key = device name).  Raised at submission, so
    a retry resubmits the whole command. *)

val set_fault : t -> Kite_fault.Fault.t option -> unit

val read : t -> sector:int -> count:int -> Bytes.t
(** Blocking (process context): returns [count * 512] bytes. *)

val write : t -> sector:int -> Bytes.t -> unit
(** Blocking; data length must be a multiple of the sector size. *)

val flush : t -> unit
(** Blocking cache flush barrier. *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
