open Kite_sim

exception Transient_error of string

type t = {
  name : string;
  sched : Process.sched;
  metrics : Metrics.t;
  line_rate_bps : float;
  per_packet : Time.span;
  queue_limit : int;
  txq : Bytes.t Mailbox.t;
  mutable peer : t option;
  mutable propagation : Time.span;
  mutable rx_handler : (Bytes.t -> unit) option;
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable dropped : int;
  mutable fault : Kite_fault.Fault.t option;
  mutable impair : Kite_net.Impair.t option;
  mutable held : Bytes.t option;
}

let name t = t.name

let serialization_delay t len =
  let bits = float_of_int (len * 8) in
  int_of_float (bits /. t.line_rate_bps *. 1e9)

let receive t frame =
  t.rx_packets <- t.rx_packets + 1;
  t.rx_bytes <- t.rx_bytes + Bytes.length frame;
  Metrics.incr t.metrics ("nic." ^ t.name ^ ".rx");
  match t.rx_handler with Some f -> f frame | None -> ()

let transmitter t () =
  let engine = Process.engine t.sched in
  let rec loop () =
    let frame = Mailbox.recv t.txq in
    let len = Bytes.length frame in
    Process.sleep (serialization_delay t len + t.per_packet);
    t.tx_packets <- t.tx_packets + 1;
    t.tx_bytes <- t.tx_bytes + len;
    Metrics.incr t.metrics ("nic." ^ t.name ^ ".tx");
    (match t.peer with
    | Some peer -> (
        let deliver extra frame =
          ignore
            (Engine.schedule_after engine (t.propagation + extra) (fun () ->
                 receive peer frame))
        in
        match t.impair with
        | None -> deliver 0 frame
        | Some imp -> (
            (* Impaired cable: every frame draws a fate from the
               impairment's private RNG stream.  A held frame rides just
               behind the next delivered one (a one-frame swap). *)
            match Kite_net.Impair.frame imp with
            | Kite_net.Impair.Drop -> ()
            | Kite_net.Impair.Hold -> t.held <- Some frame
            | Kite_net.Impair.Deliver extra ->
                deliver extra frame;
                (match t.held with
                | Some h ->
                    t.held <- None;
                    Kite_net.Impair.release imp;
                    deliver (extra + 1) h
                | None -> ())))
    | None -> ());
    loop ()
  in
  loop ()

let create sched metrics ~name ?(line_rate_gbps = 10.0)
    ?(per_packet = Time.ns 100) ?(queue_limit = 1024) () =
  let t =
    {
      name;
      sched;
      metrics;
      line_rate_bps = line_rate_gbps *. 1e9;
      per_packet;
      queue_limit;
      txq = Mailbox.create ();
      peer = None;
      propagation = 0;
      rx_handler = None;
      tx_packets = 0;
      rx_packets = 0;
      tx_bytes = 0;
      rx_bytes = 0;
      dropped = 0;
      fault = None;
      impair = None;
      held = None;
    }
  in
  Process.spawn sched ~daemon:true ~name:("nic-" ^ name ^ "-tx")
    (transmitter t);
  t

let connect a b ~propagation =
  if a.peer <> None || b.peer <> None then
    invalid_arg "Nic.connect: NIC already wired";
  a.peer <- Some b;
  b.peer <- Some a;
  a.propagation <- propagation;
  b.propagation <- propagation

let set_rx_handler t f = t.rx_handler <- Some f
let set_fault t f = t.fault <- f

let set_impair t imp =
  t.impair <- imp;
  if imp = None then t.held <- None

let impair t = t.impair

let transmit t frame =
  (* Transient transmit failure (descriptor ring hiccup): raised at the
     enqueue point so the caller — netback's pusher — can retry with
     backoff. *)
  (match t.fault with
  | Some f
    when Kite_fault.Fault.fire f Kite_fault.Fault.Device_io ~key:t.name ->
      raise
        (Transient_error
           (Printf.sprintf "nic %s: transient transmit failure" t.name))
  | _ -> ());
  if Mailbox.length t.txq >= t.queue_limit then begin
    t.dropped <- t.dropped + 1;
    Metrics.incr t.metrics ("nic." ^ t.name ^ ".drop")
  end
  else Mailbox.send t.txq frame

let tx_packets t = t.tx_packets
let rx_packets t = t.rx_packets
let tx_bytes t = t.tx_bytes
let rx_bytes t = t.rx_bytes
let dropped t = t.dropped
let line_rate_gbps t = t.line_rate_bps /. 1e9
