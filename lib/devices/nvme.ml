open Kite_sim

let sector_size = 512

exception Out_of_range of string
exception Transient_error of string

type op = Read | Write | Flush

type command = {
  op : op;
  sector : int;
  len : int;  (* bytes *)
  data : Bytes.t;  (* payload for writes; filled for reads *)
  done_ : Condition.t;
  mutable completed : bool;
}

type t = {
  name : string;
  sched : Process.sched;
  metrics : Metrics.t;
  capacity_sectors : int;
  read_base : Time.span;
  write_base : Time.span;
  cmd_overhead : Time.span;
  bandwidth_bps : float;
  sectors : (int, Bytes.t) Hashtbl.t;
  queue : command Mailbox.t;
  (* Commands overlap their setup latency, but the flash media moves data
     at a fixed aggregate bandwidth: transfers are serialized on this
     cursor. *)
  mutable media_free_at : Time.t;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable fault : Kite_fault.Fault.t option;
}

let name t = t.name
let capacity_sectors t = t.capacity_sectors

let transfer_time t len =
  int_of_float (float_of_int len /. t.bandwidth_bps *. 1e9)

(* Sleep through base latency (overlappable), then claim the media for the
   transfer portion (serialized across the queue). *)
let serve_io t base len =
  Process.sleep base;
  let engine = Process.engine t.sched in
  let now = Engine.now engine in
  let start = max now t.media_free_at in
  (* The controller's per-command processing serializes with the media:
     many small commands cost more than one merged large one. *)
  let finish = start + t.cmd_overhead + transfer_time t len in
  t.media_free_at <- finish;
  Process.sleep (finish - now)

let do_read t sector count buf =
  for i = 0 to count - 1 do
    let src =
      match Hashtbl.find_opt t.sectors (sector + i) with
      | Some b -> b
      | None -> Bytes.make sector_size '\000'
    in
    Bytes.blit src 0 buf (i * sector_size) sector_size
  done

let do_write t sector data =
  let count = Bytes.length data / sector_size in
  for i = 0 to count - 1 do
    Hashtbl.replace t.sectors (sector + i)
      (Bytes.sub data (i * sector_size) sector_size)
  done

let worker t () =
  let rec loop () =
    let cmd = Mailbox.recv t.queue in
    (match cmd.op with
    | Read ->
        serve_io t t.read_base cmd.len;
        do_read t cmd.sector (cmd.len / sector_size) cmd.data;
        t.reads <- t.reads + 1;
        t.bytes_read <- t.bytes_read + cmd.len;
        Metrics.incr t.metrics ("nvme." ^ t.name ^ ".read")
    | Write ->
        serve_io t t.write_base cmd.len;
        do_write t cmd.sector cmd.data;
        t.writes <- t.writes + 1;
        t.bytes_written <- t.bytes_written + cmd.len;
        Metrics.incr t.metrics ("nvme." ^ t.name ^ ".write")
    | Flush ->
        Process.sleep t.write_base;
        Metrics.incr t.metrics ("nvme." ^ t.name ^ ".flush"));
    cmd.completed <- true;
    Condition.broadcast cmd.done_;
    loop ()
  in
  loop ()

let create sched metrics ~name ?(capacity_sectors = 976_773_168)
    ?(queue_depth = 32) ?(read_base = Time.us 25) ?(write_base = Time.us 30)
    ?(cmd_overhead = Time.us 4) ?(bandwidth_mbps = 1500.0) () =
  let t =
    {
      name;
      sched;
      metrics;
      capacity_sectors;
      read_base;
      write_base;
      cmd_overhead;
      bandwidth_bps = bandwidth_mbps *. 1e6;
      sectors = Hashtbl.create 4096;
      queue = Mailbox.create ();
      media_free_at = Time.zero;
      reads = 0;
      writes = 0;
      bytes_read = 0;
      bytes_written = 0;
      fault = None;
    }
  in
  for i = 1 to queue_depth do
    Process.spawn sched ~daemon:true
      ~name:(Printf.sprintf "nvme-%s-w%d" name i)
      (worker t)
  done;
  t

let check t sector count =
  if sector < 0 || count < 0 || sector + count > t.capacity_sectors then
    raise
      (Out_of_range
         (Printf.sprintf "nvme %s: sectors %d+%d out of range" t.name sector
            count))

let set_fault t f = t.fault <- f

let submit t cmd =
  (* Transient command failure (media busy, CRC hiccup): reported at
     submission, before the command reaches the queue, so the caller's
     retry resubmits the whole command. *)
  (match t.fault with
  | Some f
    when Kite_fault.Fault.fire f Kite_fault.Fault.Device_io ~key:t.name ->
      raise
        (Transient_error
           (Printf.sprintf "nvme %s: transient command failure" t.name))
  | _ -> ());
  Mailbox.send t.queue cmd;
  while not cmd.completed do
    Condition.wait cmd.done_
  done

let read t ~sector ~count =
  check t sector count;
  let buf = Bytes.create (count * sector_size) in
  let cmd =
    {
      op = Read;
      sector;
      len = count * sector_size;
      data = buf;
      done_ = Condition.create ();
      completed = false;
    }
  in
  submit t cmd;
  buf

let write t ~sector data =
  let len = Bytes.length data in
  if len mod sector_size <> 0 then
    invalid_arg "Nvme.write: length not sector-aligned";
  check t sector (len / sector_size);
  let cmd =
    {
      op = Write;
      sector;
      len;
      data;
      done_ = Condition.create ();
      completed = false;
    }
  in
  submit t cmd

let flush t =
  let cmd =
    {
      op = Flush;
      sector = 0;
      len = 0;
      data = Bytes.empty;
      done_ = Condition.create ();
      completed = false;
    }
  in
  submit t cmd

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
