open Kite_stats
module Trace = Kite_trace.Trace

let fint = string_of_int
let us ns = Table.fmt_f (ns /. 1000.)

let summary_table ts =
  let t =
    Table.create ~title:"Trace summary"
      ~columns:
        [
          ("machine", Table.Left);
          ("events", Table.Right);
          ("dropped", Table.Right);
          ("spans", Table.Right);
          ("open spans", Table.Right);
        ]
  in
  List.iter
    (fun tr ->
      Table.add_row t
        [
          Trace.name tr;
          fint (Trace.events tr);
          fint (Trace.dropped tr);
          fint (List.length (Trace.spans tr));
          fint (Trace.open_spans tr);
        ])
    ts;
  let lost = List.fold_left (fun a tr -> a + Trace.dropped tr) 0 ts in
  if lost > 0 then
    Table.note t
      (Printf.sprintf
         "WARNING: %d event(s) dropped at the buffer limit — the Chrome \
          export and breakdown under-count; re-run with a higher ?limit \
          (hypercall profile and spans stay exact)"
         lost);
  t

let total_dropped ts =
  List.fold_left (fun a tr -> a + Trace.dropped tr) 0 ts

let hypercall_table ts =
  let t =
    Table.create ~title:"Per-domain hypercall profile (xentrace-style)"
      ~columns:
        [
          ("machine", Table.Left);
          ("domain", Table.Left);
          ("operation", Table.Left);
          ("count", Table.Right);
          ("total us", Table.Right);
          ("avg ns", Table.Right);
        ]
  in
  List.iter
    (fun (machine, domain, op, count, total) ->
      Table.add_row t
        [
          machine;
          domain;
          op;
          fint count;
          us (float_of_int total);
          Table.fmt_f (float_of_int total /. float_of_int (max 1 count));
        ])
    (Trace.hypercall_profile ts);
  Table.note t
    "exact aggregation (independent of the event-buffer limit); zero-cost \
     rows itemize kernel-internal grant ops whose CPU time is folded into \
     the calibrated per-unit costs";
  t

let breakdown_tables ts =
  List.map
    (fun (kind, stages) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "Latency breakdown: %s spans (us)" kind)
          ~columns:
            [
              ("stage", Table.Left);
              ("n", Table.Right);
              ("p50", Table.Right);
              ("p95", Table.Right);
              ("p99", Table.Right);
              ("mean", Table.Right);
            ]
      in
      List.iter
        (fun (stage, durs) ->
          match durs with
          | [] -> ()
          | _ ->
              Table.add_row t
                [
                  stage;
                  fint (List.length durs);
                  us (Summary.percentile durs 50.);
                  us (Summary.percentile durs 95.);
                  us (Summary.percentile durs 99.);
                  us (Summary.mean durs);
                ])
        stages;
      Table.note t
        "stages partition each request's lifetime; TOTAL is begin-to-end";
      t)
    (Trace.breakdown ts)
