(** Renderers for {!Kite_flight.Flight} recorders, their incident
    snapshots, and {!Kite_flight.Slo} verdicts — shared by
    [kite_ctl flight] / [kite_ctl incident] and the restart-recovery
    experiment report. *)

val summary_table : Kite_flight.Flight.t list -> Kite_stats.Table.t
(** One row per recorder: ring occupancy, drops, incident and SLO
    counts. *)

val slo_table : Kite_flight.Flight.t list -> Kite_stats.Table.t
(** One row per SLO verdict from each recorder's last seal. *)

val incident_headline : Kite_flight.Flight.t -> Kite_flight.Flight.incident -> string

val timeline_table :
  ?last:int ->
  Kite_flight.Flight.t ->
  Kite_flight.Flight.incident ->
  Kite_stats.Table.t
(** The correlated cross-layer timeline: the [last] (default 40)
    pre-trigger records plus everything captured after the trigger
    (marked [+]). *)

val delta_table :
  Kite_flight.Flight.t -> Kite_flight.Flight.incident -> Kite_stats.Table.t
(** Metric instances that moved between trigger and seal. *)

val store_table :
  Kite_flight.Flight.t -> Kite_flight.Flight.incident -> Kite_stats.Table.t
(** The xenstore subtree captured at the trigger instant. *)

val incident_slo_table :
  Kite_flight.Flight.t -> Kite_flight.Flight.incident -> Kite_stats.Table.t

val incident_tables :
  ?last:int ->
  ?store:bool ->
  Kite_flight.Flight.t ->
  Kite_flight.Flight.incident ->
  Kite_stats.Table.t list
(** The full rendered snapshot: timeline, metrics delta, xenstore dump
    ([store], default true), and SLO verdicts when any are registered. *)

val print_incident :
  ?last:int ->
  ?store:bool ->
  Kite_flight.Flight.t ->
  Kite_flight.Flight.incident ->
  unit
(** Headline plus {!incident_tables} to stdout. *)
