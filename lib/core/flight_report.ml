open Kite_flight
open Kite_stats

(* Renderers for flight recorders and their incident snapshots; shared by
   [kite_ctl flight] / [kite_ctl incident] and the restart-recovery
   experiment report.  Rendering only reads the recorders' public
   accessors, so the text and --json outputs always agree. *)

let ms ns = Table.fmt_f (float_of_int ns /. 1e6)

let summary_table fls =
  let tbl =
    Table.create ~title:"flight recorders"
      ~columns:
        [
          ("machine", Table.Left);
          ("records", Table.Right);
          ("dropped", Table.Right);
          ("incidents", Table.Right);
          ("open", Table.Right);
          ("slos", Table.Right);
        ]
  in
  List.iter
    (fun fl ->
      Table.add_row tbl
        [
          Flight.name fl;
          string_of_int (List.length (Flight.records fl));
          string_of_int (Flight.dropped fl);
          string_of_int (List.length (Flight.incidents fl));
          (match Flight.open_incident fl with Some _ -> "1" | None -> "0");
          string_of_int (List.length (Flight.slos fl));
        ])
    fls;
  Table.note tbl
    "records = current ring occupancy; dropped = overwritten since the ring \
     filled (expected on long runs).";
  tbl

let slo_verdict e =
  if e.Slo.ev_count = 0 then "no data"
  else if e.Slo.ev_met then "met"
  else "MISSED"

let slo_table fls =
  let tbl =
    Table.create ~title:"SLO verdicts"
      ~columns:
        [
          ("machine", Table.Left);
          ("slo", Table.Left);
          ("objective", Table.Left);
          ("window ms", Table.Right);
          ("n", Table.Right);
          ("actual", Table.Right);
          ("compliance", Table.Right);
          ("burn", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  List.iter
    (fun fl ->
      List.iter
        (fun e ->
          Table.add_row tbl
            [
              Flight.name fl;
              e.Slo.ev_name;
              Printf.sprintf "p%g(%s) <= %g" (e.Slo.ev_q *. 100.)
                e.Slo.ev_metric e.Slo.ev_threshold;
              ms (e.Slo.ev_to - e.Slo.ev_from);
              string_of_int e.Slo.ev_count;
              (if Float.is_nan e.Slo.ev_actual then "-"
               else Printf.sprintf "%g" e.Slo.ev_actual);
              Table.fmt_pct (e.Slo.ev_compliance *. 100.);
              Table.fmt_f e.Slo.ev_burn;
              slo_verdict e;
            ])
        (Flight.slo_evals fl))
    fls;
  Table.note tbl
    "burn = over-threshold fraction / error budget (1 - q); > 1.00 means the \
     window overspent its budget.";
  tbl

let incident_headline fl inc =
  Printf.sprintf "incident #%d on %s: %s trigger at %s ms — %s"
    (Flight.incident_seq inc) (Flight.name fl)
    (Flight.trigger_name (Flight.incident_trigger inc))
    (ms (Flight.incident_at inc))
    (Flight.incident_reason inc)

let timeline_table ?(last = 40) fl inc =
  let records = Flight.incident_timeline inc in
  let pre_n = List.length (Flight.incident_pre inc) in
  let n = List.length records in
  let skip = max 0 (pre_n - last) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "timeline: incident #%d (%s)"
           (Flight.incident_seq inc) (Flight.name fl))
      ~columns:
        [
          ("at ms", Table.Right);
          ("", Table.Left);
          ("layer", Table.Left);
          ("kind", Table.Left);
          ("key", Table.Left);
          ("detail", Table.Left);
        ]
  in
  List.iteri
    (fun i r ->
      if i >= skip then
        Table.add_row tbl
          [
            ms r.Flight.r_at;
            (if i < pre_n then "" else "+");
            r.Flight.r_layer;
            r.Flight.r_kind;
            r.Flight.r_key;
            r.Flight.r_msg;
          ])
    records;
  let trunc = Flight.incident_truncated inc in
  Table.note tbl
    (Printf.sprintf
       "%d of %d record(s) shown (last %d pre-trigger + all post); + marks \
        post-trigger records%s."
       (n - skip) n (min pre_n last)
       (if trunc > 0 then Printf.sprintf "; %d post record(s) LOST" trunc
        else ""));
  tbl

let delta_table fl inc =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "metrics delta: incident #%d (%s), trigger -> seal"
           (Flight.incident_seq inc) (Flight.name fl))
      ~columns:
        [
          ("family", Table.Left);
          ("labels", Table.Left);
          ("before", Table.Right);
          ("after", Table.Right);
          ("delta", Table.Right);
        ]
  in
  List.iter
    (fun (fam, labels, v0, v1) ->
      Table.add_row tbl
        [
          fam;
          String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels);
          Table.fmt_f v0;
          Table.fmt_f v1;
          Printf.sprintf "%+g" (v1 -. v0);
        ])
    (Flight.incident_delta inc);
  tbl

let store_table fl inc =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "xenstore at trigger: incident #%d (%s)"
           (Flight.incident_seq inc) (Flight.name fl))
      ~columns:[ ("path", Table.Left); ("value", Table.Left) ]
  in
  List.iter
    (fun (p, v) -> Table.add_row tbl [ p; v ])
    (Flight.incident_store inc);
  tbl

let incident_slo_table fl inc =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "SLOs at seal: incident #%d (%s)"
           (Flight.incident_seq inc) (Flight.name fl))
      ~columns:
        [
          ("slo", Table.Left);
          ("objective", Table.Left);
          ("n", Table.Right);
          ("actual", Table.Right);
          ("burn", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        [
          e.Slo.ev_name;
          Printf.sprintf "p%g(%s) <= %g" (e.Slo.ev_q *. 100.) e.Slo.ev_metric
            e.Slo.ev_threshold;
          string_of_int e.Slo.ev_count;
          (if Float.is_nan e.Slo.ev_actual then "-"
           else Printf.sprintf "%g" e.Slo.ev_actual);
          Table.fmt_f e.Slo.ev_burn;
          slo_verdict e;
        ])
    (Flight.incident_slos inc);
  tbl

let incident_tables ?last ?(store = true) fl inc =
  let base =
    [ timeline_table ?last fl inc; delta_table fl inc ]
    @ (if store then [ store_table fl inc ] else [])
  in
  base
  @ if Flight.incident_slos inc = [] then [] else [ incident_slo_table fl inc ]

let print_incident ?last ?store fl inc =
  print_endline (incident_headline fl inc);
  List.iter Table.print (incident_tables ?last ?store fl inc)
