(** Render {!Kite_trace.Trace} data as report tables.

    [kite_ctl trace] and the [hypercalls] experiment print these; the raw
    Chrome JSON exporter lives in [kite_trace] itself. *)

val summary_table : Kite_trace.Trace.t list -> Kite_stats.Table.t
(** One row per traced machine: events recorded/dropped, spans
    completed/open.  Gains a WARNING footnote when any bounded buffer
    dropped events (the Chrome export and breakdown under-count). *)

val total_dropped : Kite_trace.Trace.t list -> int
(** Events dropped across all machines — [kite_ctl trace --fail-on-drop]
    and the [@trace] gate turn non-zero into a failing exit. *)

val hypercall_table : Kite_trace.Trace.t list -> Kite_stats.Table.t
(** The §4.2-style per-domain hypercall profile: count, total and average
    simulated cost per (machine, domain, operation). *)

val breakdown_tables : Kite_trace.Trace.t list -> Kite_stats.Table.t list
(** One table per span kind ([net.tx], [blk]): p50/p95/p99/mean attributed
    time per stage, with the end-to-end TOTAL last. *)
