open Kite_stats
module Path = Kite_path.Path

let fint = string_of_int
let us ns = Table.fmt_f (ns /. 1000.)
let ms ns = Table.fmt_f (ns /. 1e6)

let waterfall_table ps =
  let t =
    Table.create ~title:"Critical-path waterfall (per stage)"
      ~columns:
        [
          ("machine", Table.Left);
          ("kind", Table.Left);
          ("stage", Table.Left);
          ("class", Table.Left);
          ("n", Table.Right);
          ("p50 us", Table.Right);
          ("p99 us", Table.Right);
          ("total ms", Table.Right);
          ("share", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      let stats = Path.stage_stats p in
      let kinds =
        List.fold_left
          (fun acc s ->
            if List.mem s.Path.st_kind acc then acc else acc @ [ s.Path.st_kind ])
          [] stats
      in
      List.iter
        (fun kind ->
          let span_total = Path.span_total_ns p ~kind in
          List.iter
            (fun s ->
              if s.Path.st_kind = kind then
                Table.add_row t
                  [
                    Path.name p;
                    kind;
                    s.Path.st_stage;
                    Path.class_name s.Path.st_class;
                    fint s.Path.st_n;
                    us s.Path.st_p50;
                    us s.Path.st_p99;
                    ms (float_of_int s.Path.st_total_ns);
                    Table.fmt_pct
                      (100.
                      *. float_of_int s.Path.st_total_ns
                      /. float_of_int (max 1 span_total));
                  ])
            stats;
          let cls_ms c = ms (float_of_int (Path.class_total_ns p ~kind c)) in
          Table.add_row t
            [
              Path.name p;
              kind;
              "TOTAL";
              Printf.sprintf "q=%s s=%s n=%s" (cls_ms Path.Queueing)
                (cls_ms Path.Service) (cls_ms Path.Notify);
              fint (Path.span_count p ~kind);
              "-";
              "-";
              ms (float_of_int span_total);
              "100.0%";
            ])
        kinds)
    ps;
  Table.note t
    "stages partition each span, so per-stage totals sum to the kind's \
     end-to-end TOTAL; class q/s/n = queueing/service/notify ms";
  t

let devices_table ps =
  let t =
    Table.create ~title:"Per-device attribution"
      ~columns:
        [
          ("machine", Table.Left);
          ("kind", Table.Left);
          ("device", Table.Left);
          ("spans", Table.Right);
          ("total ms", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun (kind, key, n, total) ->
          Table.add_row t
            [ Path.name p; kind; key; fint n; ms (float_of_int total) ])
        (Path.devices p))
    ps;
  t

let cpu_table ps =
  let t =
    Table.create ~title:"CPU profile (simulated busy time)"
      ~columns:
        [
          ("machine", Table.Left);
          ("domain", Table.Left);
          ("process", Table.Left);
          ("busy ms", Table.Right);
          ("share", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      let total = max 1 (Path.cpu_total_ns p) in
      List.iter
        (fun (dom, proc, busy) ->
          Table.add_row t
            [
              Path.name p;
              dom;
              proc;
              ms (float_of_int busy);
              Table.fmt_pct (100. *. float_of_int busy /. float_of_int total);
            ])
        (Path.profile p))
    ps;
  Table.note t
    "scheduler-run sampler: every simulated-CPU occupancy is attributed to \
     the (domain, process) that incurred it; (interrupt) = outside any \
     process";
  t

type saturation_row = {
  sat_rate : float;
  sat_offered : int;
  sat_completed : int;
  sat_p99_ms : float;
  sat_queue_ms : float;
  sat_service_ms : float;
}

let saturation_table ~kind rows =
  let t =
    Table.create
      ~title:(Printf.sprintf "Saturation sweep: %s (open-loop offered load)" kind)
      ~columns:
        [
          ("rate/s", Table.Right);
          ("offered", Table.Right);
          ("completed", Table.Right);
          ("p99 ms", Table.Right);
          ("queue ms", Table.Right);
          ("service ms", Table.Right);
          ("queue share", Table.Right);
          ("regime", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      let qs = r.sat_queue_ms /. Float.max 1e-9 (r.sat_queue_ms +. r.sat_service_ms) in
      Table.add_row t
        [
          Table.fmt_si r.sat_rate;
          fint r.sat_offered;
          fint r.sat_completed;
          Table.fmt_f r.sat_p99_ms;
          Table.fmt_f r.sat_queue_ms;
          Table.fmt_f r.sat_service_ms;
          Table.fmt_pct (100. *. qs);
          (if qs > 0.5 then "queue-bound" else "service-bound");
        ])
    rows;
  Table.note t
    "the knee is the first rate where queueing time overtakes service time \
     (queue share > 50%)";
  t
