open Kite_metrics
open Kite_stats

(* Rendering only reads the registries through the public polling API
   ([read] to enumerate instances, [series]/[quantile] for history), so
   [kite_ctl top] and [kite_ctl metrics] are guaranteed to agree with
   the /metrics exposition — same registry, same closures. *)

let instances r name =
  List.filter_map
    (fun (n, labels, v) -> if n = name then Some (labels, v) else None)
    (Registry.read r)

let any _ = true
let frontend labels = List.mem ("side", "frontend") labels

(* Sum over matching instances of the last *sampled* value — the
   steady-state figure, not the post-teardown one the live closure would
   read now — falling back to the current value for registries that were
   never sampled.  None when the machine has no such instrument. *)
let sum_values r name ~where =
  match instances r name |> List.filter (fun (l, _) -> where l) with
  | [] -> None
  | xs ->
      Some
        (List.fold_left
           (fun acc (labels, v) ->
             match Registry.last_sample r name labels with
             | Some (_, sv) -> acc +. sv
             | None -> acc +. v)
           0. xs)

(* Active-window per-second rate, summed across matching instances.
   When a burst completes inside one sampling interval the registry
   never sees the value move; counters in this simulator are born zero
   at t=0, so fall back to the whole-run average. *)
let rate r name ~where =
  match instances r name |> List.filter (fun (l, _) -> where l) with
  | [] -> None
  | xs ->
      Some
        (List.fold_left
           (fun acc (labels, _) ->
             match Registry.rate r name labels with
             | Some per_s -> acc +. per_s
             | None -> (
                 match Registry.last_sample r name labels with
                 | Some (at, v) when at > 0 && v > 0. ->
                     acc +. (v /. float_of_int at *. 1e9)
                 | _ -> acc))
           0. xs)

(* Report renderers speak percentiles in [0, 100] (the Summary.percentile
   convention used by the trace breakdown tables); Registry.percentile is
   the single bridge to the histograms' [0, 1] quantile convention. *)
let percentile r name p =
  match instances r name with
  | [] -> None
  | (labels, _) :: _ -> Registry.percentile r name labels p

let dash = "-"
let fmt_opt f = function None -> dash | Some v -> f v

type sort = By_rate | By_busy

(* Sort keys read the same polled surfaces as the rows themselves, so
   ordering can't disagree with the numbers printed. *)
let sort_key r = function
  | By_rate ->
      let g name = Option.value ~default:0. (rate r name ~where:frontend) in
      g "kite_net_tx_packets_total"
      +. g "kite_net_rx_packets_total"
      +. g "kite_blk_requests_total"
  | By_busy ->
      (* A histogram's scalar is its observation count: the machine whose
         busiest histogram saw the most events sorts first. *)
      let hists =
        List.filter_map
          (fun (n, kind, _) ->
            if kind = Registry.Histogram then Some n else None)
          (Registry.families r)
      in
      List.fold_left
        (fun acc (n, _, v) ->
          if List.mem n hists then Float.max acc v else acc)
        0. (Registry.read r)

let top_table ?sort rs =
  let rs =
    match sort with
    | None -> rs
    | Some s ->
        List.stable_sort (fun a b -> compare (sort_key b s) (sort_key a s)) rs
  in
  let tbl =
    Table.create ~title:"kite top - live per-machine telemetry"
      ~columns:
        [
          ("machine", Table.Left);
          ("tx/s", Table.Right);
          ("rx/s", Table.Right);
          ("io/s", Table.Right);
          ("ring", Table.Right);
          ("grants", Table.Right);
          ("pgrants", Table.Right);
          ("io p50 us", Table.Right);
          ("io p99 us", Table.Right);
          ("alerts", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      (* Worst pending-slot count across request rings.  The net Rx ring
         is excluded: a healthy frontend keeps it full of posted
         buffers, so its occupancy is not a congestion signal. *)
      let ring =
        let tagged name xs = List.map (fun x -> (name, x)) xs in
        match
          tagged "kite_net_ring_pending"
            (instances r "kite_net_ring_pending"
            |> List.filter (fun (l, _) -> List.mem ("ring", "tx") l))
          @ tagged "kite_blk_ring_pending" (instances r "kite_blk_ring_pending")
        with
        | [] -> None
        | xs ->
            Some
              (List.fold_left
                 (fun acc (name, (labels, v)) ->
                   let v =
                     match Registry.last_sample r name labels with
                     | Some (_, sv) -> sv
                     | None -> v
                   in
                   Float.max acc v)
                 0. xs)
      in
      let q p =
        fmt_opt
          (fun ns -> Table.fmt_f (ns /. 1e3))
          (percentile r "kite_blk_latency_ns" p)
      in
      Table.add_row tbl
        [
          Registry.name r;
          fmt_opt Table.fmt_si (rate r "kite_net_tx_packets_total" ~where:frontend);
          fmt_opt Table.fmt_si (rate r "kite_net_rx_packets_total" ~where:frontend);
          fmt_opt Table.fmt_si (rate r "kite_blk_requests_total" ~where:frontend);
          fmt_opt (Table.fmt_f ~prec:0) ring;
          fmt_opt (Table.fmt_f ~prec:0) (sum_values r "kite_grant_active" ~where:any);
          fmt_opt (Table.fmt_f ~prec:0)
            (sum_values r "kite_blk_persistent_grants" ~where:any);
          q 50.;
          q 99.;
          string_of_int (List.length (Registry.alerts r));
        ])
    rs;
  Table.note tbl
    "Rates from sampled series deltas (lifetime); ring = max pending request \
     slots (net tx + blk).";
  tbl

let alerts_table rs =
  let tbl =
    Table.create ~title:"health alerts"
      ~columns:
        [
          ("machine", Table.Left);
          ("at (ms)", Table.Right);
          ("probe", Table.Left);
          ("labels", Table.Left);
          ("message", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          Table.add_row tbl
            [
              Registry.name r;
              Table.fmt_f (float_of_int a.Registry.alert_at /. 1e6);
              a.Registry.alert_probe;
              String.concat ","
                (List.map (fun (k, v) -> k ^ "=" ^ v) a.Registry.alert_labels);
              a.Registry.alert_msg;
            ])
        (Registry.alerts r))
    rs;
  tbl

let families_table rs =
  let tbl =
    Table.create ~title:"metric families"
      ~columns:
        [
          ("machine", Table.Left);
          ("family", Table.Left);
          ("kind", Table.Left);
          ("help", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun (name, kind, help) ->
          let k =
            match kind with
            | Registry.Counter -> "counter"
            | Registry.Gauge -> "gauge"
            | Registry.Histogram -> "histogram"
          in
          Table.add_row tbl [ Registry.name r; name; k; help ])
        (Registry.families r))
    rs;
  tbl
