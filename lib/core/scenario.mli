(** Ready-made testbeds mirroring the paper's evaluation setup (Table 2):
    a Xen server machine hosting a driver domain (Kite or Ubuntu flavored)
    and a DomU running the server application, cabled to a bare-metal
    client machine that generates load. *)

type flavor = Kite | Linux

val flavor_name : flavor -> string

val overheads_of : flavor -> Kite_drivers.Overheads.t

val set_schedule_seed : int option -> unit
(** Run-wide schedule-exploration seed: when set, every testbed engine
    built afterwards randomizes the order of same-instant events from
    this seed (PCT-style), letting sweeps rerun one workload under many
    interleavings with the race detector and protocol checker as
    oracles.  [None] (the default) keeps the deterministic FIFO order.
    An explicit [?schedule_seed] argument to {!network}/{!storage}
    overrides it per-testbed. *)

val teardown_all : unit -> unit
(** Run the orderly teardown of every testbed built so far: quiesce,
    stop backends, shut down frontends.  When a checker was active
    ({!Kite_check.Check.set_default}) when the testbed was built, the
    end-of-run audits (grant leaks, orphaned watches, open transactions,
    quiescence) run as the last step. *)

val arm_ambient : Kite_drivers.Xen_ctx.t -> string -> unit
(** Arm whatever run-wide observability sinks are currently set (check,
    trace, fault, metrics, path, flight — in that order, so the path
    engine taps the tracer/registry and the recorder taps the rest) on a
    hand-built context.  For benchmarks and harnesses
    that construct [Hypervisor] + [Xen_ctx] directly instead of going
    through {!network}/{!storage}, which arm these themselves.  The
    string tags the per-machine instance names. *)

(** {1 Network domain testbed} *)

type net = {
  hv : Kite_xen.Hypervisor.t;
  ctx : Kite_drivers.Xen_ctx.t;
  sched : Kite_sim.Process.sched;
  dd : Kite_xen.Domain.t;
  domu : Kite_xen.Domain.t;
  guest_stack : Kite_net.Stack.t;
  guest_tcp : Kite_net.Tcp.t;
  client_stack : Kite_net.Stack.t;
  client_tcp : Kite_net.Tcp.t;
  netfront : Kite_drivers.Netfront.t;
  mutable net_app : Kite_drivers.Net_app.t;
      (** Replaced by {!crash_and_restart_net} when the backend domain is
          rebuilt. *)
  server_nic : Kite_devices.Nic.t;
  client_nic : Kite_devices.Nic.t;
  guest_ip : Kite_net.Ipv4addr.t;
  net_fault : Kite_fault.Fault.t option;
      (** This machine's injector when a fault sink was active
          ({!Kite_fault.Fault.set_default}) at build time. *)
  net_metrics : Kite_metrics.Registry.t option;
      (** This machine's metric registry when a metrics sink was active
          ({!Kite_metrics.Registry.set_default}) at build time.  A Dom0
          sampler daemon snapshots it on the registry interval, and a
          [kite_backend_state] probe alerts if the vif backend leaves
          Connected after the first handshake. *)
  net_flight : Kite_flight.Flight.t option;
      (** This machine's flight recorder when a flight sink was active
          ({!Kite_flight.Flight.set_default}) at build time, tapping
          whatever other layers are attached; a driver-domain crash or a
          probe alert edge triggers an incident snapshot, and teardown
          seals + audits it. *)
}

val network :
  ?overheads_override:Kite_drivers.Overheads.t ->
  flavor:flavor ->
  ?seed:int ->
  ?schedule_seed:int ->
  ?num_queues:int ->
  ?impair:Kite_net.Impair.spec ->
  unit ->
  net
(** Build the network-domain testbed; drive it with
    {!Kite_xen.Hypervisor.run_for}.  The netfront handshake happens in
    simulated time — use {!when_net_ready} to sequence load behind it.
    [num_queues] turns on the multi-queue dataplane: the toolstack
    writes the guest-config hint and the frontend negotiates that many
    Tx/Rx ring pairs (capped by netback).  [impair] puts seeded
    loss/reorder/delay on both directions of the cable (streams derived
    from [seed]; {!Kite_net.Impair.none} leaves the link ideal). *)

val network_with_overheads :
  overheads:Kite_drivers.Overheads.t -> ?seed:int -> unit -> net
(** A Kite-shaped network testbed with explicit driver-domain overheads
    (used by the threading ablation). *)

val when_net_ready : net -> (unit -> unit) -> unit
(** Spawn [f] as a client-side process once the frontend is connected. *)

(** {1 Storage domain testbed} *)

type blk = {
  bhv : Kite_xen.Hypervisor.t;
  bctx : Kite_drivers.Xen_ctx.t;
  bsched : Kite_sim.Process.sched;
  bdd : Kite_xen.Domain.t;
  bdomu : Kite_xen.Domain.t;
  blkfront : Kite_drivers.Blkfront.t;
  mutable blk_app : Kite_drivers.Blk_app.t;
      (** Replaced by {!crash_and_restart_blk} when the backend domain is
          rebuilt. *)
  nvme : Kite_devices.Nvme.t;
  blk_fault : Kite_fault.Fault.t option;
      (** This machine's injector when a fault sink was active
          ({!Kite_fault.Fault.set_default}) at build time. *)
  blk_metrics : Kite_metrics.Registry.t option;
      (** This machine's metric registry when a metrics sink was active
          ({!Kite_metrics.Registry.set_default}) at build time; same
          sampler and backend-state probe as {!net.net_metrics}, for the
          vbd backend. *)
  blk_flight : Kite_flight.Flight.t option;
      (** This machine's flight recorder when a flight sink was active
          at build time; see {!net.net_flight}. *)
}

val storage :
  flavor:flavor ->
  ?seed:int ->
  ?schedule_seed:int ->
  ?feature_persistent:bool ->
  ?feature_indirect:bool ->
  ?batching:bool ->
  ?num_queues:int ->
  unit ->
  blk
(** The feature flags exist for the ablation benchmarks.  [num_queues]
    negotiates that many blkif rings (capped by blkback); omitted means
    the legacy single ring. *)

val blockdev : blk -> Kite_vfs.Blockdev.t
(** The guest's paravirtual disk as a {!Kite_vfs.Blockdev} (every
    operation crosses blkfront -> blkback -> NVMe).  The capacity field is
    read at call time, so call this after the handshake has completed
    (e.g. inside {!when_blk_ready}) if you need the geometry. *)

val when_blk_ready : blk -> (unit -> unit) -> unit
(** Spawn [f] as a DomU process once blkfront is connected. *)

(** {1 Crash-and-restart cycles (restart-recovery experiment)} *)

val crash_and_restart_blk :
  blk ->
  flavor:flavor ->
  at:Kite_sim.Time.span ->
  ?on_restored:(downtime:Kite_sim.Time.span -> unit) ->
  unit ->
  unit
(** Schedule a driver-domain crash [at] after now: the backend is
    destroyed mid-I/O ({!Kite_drivers.Blkback.crash} +
    {!Kite_drivers.Toolstack.crash_driver_domain}), rebuilt with
    [flavor]'s boot profile, and the device re-registered; blkfront's own
    recovery re-handshakes and replays its journal.  [on_restored] runs
    (in process context) once the frontend is connected again, with the
    measured crash-to-reconnect downtime. *)

val crash_and_restart_net :
  net ->
  flavor:flavor ->
  at:Kite_sim.Time.span ->
  ?on_restored:(downtime:Kite_sim.Time.span -> unit) ->
  unit ->
  unit
(** Same cycle for the network domain: in-flight frames are lost (a cable
    pull), then Tx/Rx resume against the respawned backend with fresh
    rings and grants. *)
