open Kite_sim
open Kite_xen
open Kite_net
open Kite_drivers

type flavor = Kite | Linux

let flavor_name = function Kite -> "Kite" | Linux -> "Linux"

let overheads_of = function
  | Kite -> Overheads.kite
  | Linux -> Overheads.linux

(* Guest (DomU runs Ubuntu in both configurations) and client per-packet
   stack costs; see DESIGN.md §7. *)
let guest_rx_cost = Time.ns 1100
let client_rx_cost = Time.us 1

(* Every testbed built here registers an orderly-teardown closure;
   [teardown_all] runs them so end-of-run audits (grant leaks, orphaned
   watches) inspect a quiesced system rather than steady-state buffers.
   Registration is unconditional — the final audit only runs when a
   checker is active (Check.set_default), but the quiesce/stop/shutdown
   sequence itself must not depend on one being set. *)
let scenario_seq = ref 0
let teardowns : (unit -> unit) list ref = ref []

(* Run-wide schedule-exploration seed (kite_ctl race --sweep, test
   sweeps): when set, every engine built here draws PCT-style random
   priorities for same-instant events from this seed, so one process
   image can be rerun under many interleavings.  An explicit
   [?schedule_seed] argument to [network]/[storage] overrides it. *)
let schedule_seed : int option ref = ref None
let set_schedule_seed s = schedule_seed := s

let teardown_all () =
  let fs = List.rev !teardowns in
  teardowns := [];
  List.iter (fun f -> try f () with _ -> ()) fs

let attach_check ctx tag =
  match Kite_check.Check.default () with
  | None -> None
  | Some (config, report) ->
      incr scenario_seq;
      let c =
        Kite_check.Check.create ~config
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
          report
      in
      Kite_drivers.Xen_ctx.enable_check ctx c;
      Some c

(* Same default-consulting pattern as [attach_check]: when a trace sink is
   set (Trace.set_default), every machine built here gets its own tracer
   registered in the sink. *)
let attach_trace ctx tag =
  match Kite_trace.Trace.default () with
  | None -> ()
  | Some sink ->
      incr scenario_seq;
      let tr =
        Kite_trace.Trace.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
      in
      Kite_drivers.Xen_ctx.enable_trace ctx tr;
      (* An orphaned hop/end (no span open on the thread) means a broken
         begin/end pairing somewhere in the instrumentation; the tracer
         counts them, and teardown surfaces a non-zero count as a checker
         warning instead of letting them vanish. *)
      teardowns :=
        (fun () ->
          let hops = Kite_trace.Trace.orphan_hops tr in
          let ends = Kite_trace.Trace.orphan_ends tr in
          if hops + ends > 0 then
            match Kite_check.Check.default () with
            | Some (_, report) ->
                Kite_check.Report.add report
                  {
                    Kite_check.Report.severity = Kite_check.Report.Warning;
                    subsystem = "trace";
                    rule = "span-orphaned";
                    provenance = Kite_trace.Trace.name tr;
                    message =
                      Printf.sprintf
                        "%d orphaned span event(s) (%d hop, %d end): \
                         span_hop/span_end with no span open on the thread"
                        (hops + ends) hops ends;
                  }
            | None -> ())
        :: !teardowns

(* And again for fault injection (Fault.set_default): each machine gets
   its own injector, seeded deterministically from the sink, so two runs
   with the same seed and plan inject at identical points. *)
let attach_fault ctx tag =
  match Kite_fault.Fault.default () with
  | None -> None
  | Some sink ->
      incr scenario_seq;
      let f =
        Kite_fault.Fault.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
      in
      Kite_drivers.Xen_ctx.enable_fault ctx f;
      Some f

(* And for the race detector (Race.set_default): each machine gets its
   own detector registered in the sink; findings land in the sink's
   shared report alongside the protocol checker's. *)
let attach_race ctx tag =
  match Kite_race.Race.default () with
  | None -> ()
  | Some sink ->
      incr scenario_seq;
      let r =
        Kite_race.Race.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
      in
      Kite_drivers.Xen_ctx.enable_race ctx r

(* And for telemetry (Kite_metrics.Registry.set_default): each machine
   gets its own registry in the sink, plus a Dom0 sampler daemon that
   snapshots every instrument into its ring-buffered series on the
   registry's interval.  The sampler is stop-guarded through the
   teardown list so audited runs quiesce. *)
let attach_metrics ctx tag =
  match Kite_metrics.Registry.default () with
  | None -> None
  | Some sink ->
      incr scenario_seq;
      let r =
        Kite_metrics.Registry.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
      in
      Kite_drivers.Xen_ctx.enable_metrics ctx r;
      let hv = ctx.Xen_ctx.hv in
      let stop = ref false in
      teardowns := (fun () -> stop := true) :: !teardowns;
      Hypervisor.spawn hv (Hypervisor.dom0 hv) ~daemon:true
        ~name:"metrics-sampler" (fun () ->
          while not !stop do
            Process.sleep (Kite_metrics.Registry.interval r);
            if not !stop then
              Kite_metrics.Registry.sample r ~at:(Hypervisor.now hv)
          done);
      Some r

(* And for critical-path attribution (Kite_path.Path.set_default): each
   machine gets its own engine.  It taps the tracer's span stream
   additively (so it composes with the flight recorder's primary span
   observer) and mirrors its histograms/counters into the machine's
   registry when one is attached — call this after [attach_trace] and
   [attach_metrics].  Enabling it on the context also arms the
   scheduler/hypervisor CPU-profiler hooks. *)
let attach_path ctx tag =
  match Kite_path.Path.default () with
  | None -> None
  | Some sink ->
      incr scenario_seq;
      let p =
        Kite_path.Path.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
      in
      Kite_drivers.Xen_ctx.enable_path ctx p;
      (match ctx.Xen_ctx.trace with
      | Some tr -> Kite_path.Path.tap_trace p tr
      | None -> ());
      (match ctx.Xen_ctx.metrics with
      | Some r -> Kite_path.Path.wire_metrics p r
      | None -> ());
      Some p

(* The incident snapshot's xenstore view: a DFS dump of the /local/domain
   subtree, captured lazily at trigger time (so a crash trigger that runs
   before Xenstore.rm still sees the doomed domain's home). *)
let store_dump ctx () =
  let xs = Hypervisor.store ctx.Xen_ctx.hv in
  let rec walk path acc =
    let acc =
      match Xenstore.read xs ~path with
      | Some v when v <> "" -> (path, v) :: acc
      | _ -> acc
    in
    List.fold_left
      (fun acc child -> walk (path ^ "/" ^ child) acc)
      acc (Xenstore.directory xs ~path)
  in
  List.rev (walk "/local/domain" [])

(* And for the flight recorder (Kite_flight.Flight.set_default): each
   machine gets its own recorder which taps whatever observability layers
   the testbed already attached (so call this after the others), plus the
   run's shared checker report when one is set.  Teardown seals any open
   incident and runs the recorder's own audit. *)
let attach_flight ctx tag =
  match Kite_flight.Flight.default () with
  | None -> None
  | Some sink ->
      incr scenario_seq;
      let hv = ctx.Xen_ctx.hv in
      let fl =
        Kite_flight.Flight.create_in sink
          ~name:(Printf.sprintf "%s%d" tag !scenario_seq)
          ~now:(fun () -> Hypervisor.now hv)
      in
      Kite_drivers.Xen_ctx.enable_flight ctx fl;
      (match ctx.Xen_ctx.trace with
      | Some tr -> Kite_flight.Flight.tap_trace fl tr
      | None -> ());
      (match ctx.Xen_ctx.fault with
      | Some f -> Kite_flight.Flight.tap_fault fl f
      | None -> ());
      (match ctx.Xen_ctx.metrics with
      | Some r -> Kite_flight.Flight.tap_metrics fl r
      | None -> ());
      (match ctx.Xen_ctx.path with
      | Some p -> Kite_flight.Flight.tap_path fl p
      | None -> ());
      (* The report is shared run-wide, so with several machines the
         last-built one receives the findings records. *)
      (match Kite_check.Check.default () with
      | Some (_, report) -> Kite_flight.Flight.tap_report fl report
      | None -> ());
      Kite_flight.Flight.set_store_source fl (store_dump ctx);
      teardowns :=
        (fun () ->
          Kite_flight.Flight.mark fl ~what:"teardown"
            ~msg:"scenario teardown";
          Kite_flight.Flight.seal_all fl;
          match Kite_check.Check.default () with
          | Some (_, report) -> Kite_flight.Flight.audit fl report
          | None -> ())
        :: !teardowns;
      Some fl

(* Arm whatever ambient observability sinks are set on a hand-built
   context (the mq benchmarks construct Hypervisor + Xen_ctx directly
   rather than through [network]/[storage]).  Named arm_, not attach_:
   callers that never build a full scenario teardown keep lint quiet. *)
let arm_ambient ctx tag =
  ignore (attach_check ctx tag);
  attach_trace ctx tag;
  ignore (attach_fault ctx tag);
  ignore (attach_metrics ctx tag);
  ignore (attach_path ctx tag);
  ignore (attach_flight ctx tag)

(* Edge-triggered backend-health probe: silent until the handshake first
   reaches Connected, then any other state (a crashed or closing
   backend) raises a structured alert until the frontend's recovery
   reconnects.  Evaluated at sampling time from the Dom0 sampler, so the
   xenstore read is charged like any other Dom0 access. *)
let backend_state_probe ctx ~dev ~path reg =
  let seen_connected = ref false in
  Kite_metrics.Registry.probe reg ~name:"kite_backend_state"
    [ ("dev", dev) ]
    (fun () ->
      let st =
        Xenbus.read_state ctx.Xen_ctx.xb
          (Hypervisor.dom0 ctx.Xen_ctx.hv)
          ~path
      in
      if st = Xenbus.Connected then (
        seen_connected := true;
        Kite_metrics.Registry.Healthy)
      else if !seen_connected then
        Kite_metrics.Registry.Alert
          (Format.asprintf "backend %s state %a (expected Connected)" dev
             Xenbus.pp_state st)
      else Kite_metrics.Registry.Healthy)

type net = {
  hv : Hypervisor.t;
  ctx : Xen_ctx.t;
  sched : Process.sched;
  dd : Domain.t;
  domu : Domain.t;
  guest_stack : Stack.t;
  guest_tcp : Tcp.t;
  client_stack : Stack.t;
  client_tcp : Tcp.t;
  netfront : Netfront.t;
  mutable net_app : Net_app.t;
  server_nic : Kite_devices.Nic.t;
  client_nic : Kite_devices.Nic.t;
  guest_ip : Ipv4addr.t;
  net_fault : Kite_fault.Fault.t option;
  net_metrics : Kite_metrics.Registry.t option;
  net_flight : Kite_flight.Flight.t option;
}

let network ?overheads_override ~flavor ?(seed = 2022) ?schedule_seed:sseed
    ?num_queues ?impair () =
  let sseed = match sseed with Some _ -> sseed | None -> !schedule_seed in
  let hv = Hypervisor.create ~seed ?schedule_seed:sseed () in
  let ctx = Xen_ctx.create hv in
  let check = attach_check ctx ("net-" ^ flavor_name flavor ^ "-") in
  attach_race ctx ("net-" ^ flavor_name flavor ^ "-");
  attach_trace ctx ("net-" ^ flavor_name flavor ^ "-");
  let fault = attach_fault ctx ("net-" ^ flavor_name flavor ^ "-") in
  let mreg = attach_metrics ctx ("net-" ^ flavor_name flavor ^ "-") in
  ignore (attach_path ctx ("net-" ^ flavor_name flavor ^ "-"));
  let flight = attach_flight ctx ("net-" ^ flavor_name flavor ^ "-") in
  let sched = Hypervisor.sched hv in
  let metrics = Hypervisor.metrics hv in
  let profile =
    Kite_profiles.Os_profile.get
      (match flavor with
      | Kite -> Kite_profiles.Os_profile.Kite_network
      | Linux -> Kite_profiles.Os_profile.Linux_network)
  in
  let dd =
    Hypervisor.create_domain hv
      ~name:(flavor_name flavor ^ "-netdd")
      ~kind:Domain.Driver_domain
      ~vcpus:profile.Kite_profiles.Os_profile.vcpus
      ~mem_mb:profile.Kite_profiles.Os_profile.assigned_mem_mb
  in
  let domu =
    Hypervisor.create_domain hv ~name:"domu" ~kind:Domain.Dom_u ~vcpus:22
      ~mem_mb:5120
  in
  (* The testbed's two 82599ES NICs and the SFP+ cable (Table 2). *)
  let server_nic =
    Kite_devices.Nic.create sched metrics ~name:"eth-srv" ~queue_limit:8192 ()
  in
  let client_nic =
    Kite_devices.Nic.create sched metrics ~name:"eth-cli" ~queue_limit:8192 ()
  in
  Kite_devices.Nic.connect server_nic client_nic ~propagation:(Time.ns 500);
  (* Link impairments ride the cable, one independent seeded stream per
     direction, so enabling them never perturbs any other RNG. *)
  (match impair with
  | Some spec when spec <> Kite_net.Impair.none ->
      Kite_devices.Nic.set_impair server_nic
        (Some (Kite_net.Impair.create ~seed:(seed * 2 + 1) spec));
      Kite_devices.Nic.set_impair client_nic
        (Some (Kite_net.Impair.create ~seed:(seed * 2 + 2) spec))
  | _ -> ());
  let pci = Kite_devices.Pci.create () in
  Kite_devices.Pci.register pci ~bdf:"01:00.0" (Kite_devices.Pci.Nic server_nic);
  Kite_devices.Pci.assignable_add pci ~bdf:"01:00.0";
  let nic =
    match Kite_devices.Pci.attach pci ~bdf:"01:00.0" dd with
    | Kite_devices.Pci.Nic n -> n
    | Kite_devices.Pci.Nvme _ -> assert false
  in
  let overheads =
    Option.value overheads_override ~default:(overheads_of flavor)
  in
  Kite_devices.Nic.set_fault nic fault;
  (match mreg with
  | Some r ->
      backend_state_probe ctx ~dev:"vif0"
        ~path:
          (Xenbus.backend_path ~backend:dd ~frontend:domu ~ty:"vif" ~devid:0)
        r
  | None -> ());
  let net_app = Net_app.run ctx ~domain:dd ~nic ~overheads () in
  (* The queue count is wired at both layers: the toolstack writes the
     guest-config hint and the frontend is given the explicit ask (the
     ask survives reconnects either way). *)
  Toolstack.add_vif ctx ~backend:dd ~frontend:domu ~devid:0
    ?queues:num_queues ();
  let netfront =
    Netfront.create ctx ~domain:domu ~backend:dd ~devid:0 ?num_queues ()
  in
  let guest_ip = Ipv4addr.of_string "10.0.0.2" in
  let guest_stack =
    Stack.create sched ~name:"guest" ~dev:(Netfront.netdev netfront)
      ~mac:(Macaddr.make_local 100) ~ip:guest_ip
      ~netmask:(Ipv4addr.of_string "255.255.255.0")
      ~rx_cost:guest_rx_cost ()
  in
  let client_stack =
    Stack.create sched ~name:"client" ~dev:(Netif.of_nic client_nic)
      ~mac:(Macaddr.make_local 200)
      ~ip:(Ipv4addr.of_string "10.0.0.9")
      ~netmask:(Ipv4addr.of_string "255.255.255.0")
      ~rx_cost:client_rx_cost ()
  in
  let s =
    {
      hv;
      ctx;
      sched;
      dd;
      domu;
      guest_stack;
      guest_tcp = Tcp.attach guest_stack;
      client_stack;
      client_tcp = Tcp.attach client_stack;
      netfront;
      net_app;
      server_nic;
      client_nic;
      guest_ip;
      net_fault = fault;
      net_metrics = mreg;
      net_flight = flight;
    }
  in
  (* Drain in-flight I/O, stop the backend (unregisters its watch), give
     its threads a beat to park, then close the frontend; audit only when
     a checker is wired in.  [s.net_app] is read at teardown time: after
     a crash-and-restart cycle it is the respawned backend. *)
  teardowns :=
    (fun () ->
      Hypervisor.run_for hv (Time.sec 1);
      Hypervisor.spawn hv dd ~name:"teardown" (fun () ->
          Netback.stop (Net_app.netback s.net_app);
          Process.sleep (Time.ms 1);
          (* The sleep is the only thing ordering us after the parked
             backend threads; claim their exit edges explicitly. *)
          if Kite_race.Race.active () then Kite_race.Race.scoped_quiesce ();
          Netfront.shutdown netfront);
      Hypervisor.run_for hv (Time.ms 50);
      match check with
      | Some c ->
          Kite_check.Check.finalize c
            ~pending:(Engine.pending (Hypervisor.engine hv))
      | None -> ())
    :: !teardowns;
  s

let when_net_ready net f =
  Process.spawn net.sched ~name:"when-ready" (fun () ->
      Netfront.wait_connected net.netfront;
      (* Give ARP/bridge learning a beat, as a human experimenter would. *)
      Process.sleep (Time.ms 5);
      f ())

type blk = {
  bhv : Hypervisor.t;
  bctx : Xen_ctx.t;
  bsched : Process.sched;
  bdd : Domain.t;
  bdomu : Domain.t;
  blkfront : Blkfront.t;
  mutable blk_app : Blk_app.t;
  nvme : Kite_devices.Nvme.t;
  blk_fault : Kite_fault.Fault.t option;
  blk_metrics : Kite_metrics.Registry.t option;
  blk_flight : Kite_flight.Flight.t option;
}

let storage ~flavor ?(seed = 2022) ?schedule_seed:sseed
    ?(feature_persistent = true) ?(feature_indirect = true)
    ?(batching = true) ?num_queues () =
  let sseed = match sseed with Some _ -> sseed | None -> !schedule_seed in
  let hv = Hypervisor.create ~seed ?schedule_seed:sseed () in
  let ctx = Xen_ctx.create hv in
  let check = attach_check ctx ("blk-" ^ flavor_name flavor ^ "-") in
  attach_race ctx ("blk-" ^ flavor_name flavor ^ "-");
  attach_trace ctx ("blk-" ^ flavor_name flavor ^ "-");
  let fault = attach_fault ctx ("blk-" ^ flavor_name flavor ^ "-") in
  let mreg = attach_metrics ctx ("blk-" ^ flavor_name flavor ^ "-") in
  ignore (attach_path ctx ("blk-" ^ flavor_name flavor ^ "-"));
  let flight = attach_flight ctx ("blk-" ^ flavor_name flavor ^ "-") in
  let sched = Hypervisor.sched hv in
  let metrics = Hypervisor.metrics hv in
  let profile =
    Kite_profiles.Os_profile.get
      (match flavor with
      | Kite -> Kite_profiles.Os_profile.Kite_storage
      | Linux -> Kite_profiles.Os_profile.Linux_storage)
  in
  let dd =
    Hypervisor.create_domain hv
      ~name:(flavor_name flavor ^ "-stordd")
      ~kind:Domain.Driver_domain
      ~vcpus:profile.Kite_profiles.Os_profile.vcpus
      ~mem_mb:profile.Kite_profiles.Os_profile.assigned_mem_mb
  in
  let domu =
    Hypervisor.create_domain hv ~name:"domu" ~kind:Domain.Dom_u ~vcpus:22
      ~mem_mb:5120
  in
  (* Samsung 970 EVO Plus-ish NVMe (Table 2). *)
  let nvme =
    Kite_devices.Nvme.create sched metrics ~name:"nvme0"
      ~capacity_sectors:(1 lsl 26) (* 32 GiB addressed by the experiments *)
      ()
  in
  let pci = Kite_devices.Pci.create () in
  Kite_devices.Pci.register pci ~bdf:"02:00.0" (Kite_devices.Pci.Nvme nvme);
  Kite_devices.Pci.assignable_add pci ~bdf:"02:00.0";
  ignore (Kite_devices.Pci.attach pci ~bdf:"02:00.0" dd);
  Kite_devices.Nvme.set_fault nvme fault;
  (match mreg with
  | Some r ->
      backend_state_probe ctx ~dev:"vbd0"
        ~path:
          (Xenbus.backend_path ~backend:dd ~frontend:domu ~ty:"vbd" ~devid:0)
        r
  | None -> ());
  let blk_app =
    Blk_app.run ctx ~domain:dd ~nvme ~overheads:(overheads_of flavor)
      ~feature_persistent ~feature_indirect ~batching ()
  in
  Toolstack.add_vbd ctx ~backend:dd ~frontend:domu ~devid:0
    ?queues:num_queues ();
  let blkfront =
    Blkfront.create ctx ~domain:domu ~backend:dd ~devid:0 ?num_queues ()
  in
  let s =
    { bhv = hv; bctx = ctx; bsched = sched; bdd = dd; bdomu = domu;
      blkfront; blk_app; nvme; blk_fault = fault; blk_metrics = mreg;
      blk_flight = flight }
  in
  teardowns :=
    (fun () ->
      Hypervisor.run_for hv (Time.sec 1);
      Hypervisor.spawn hv dd ~name:"teardown" (fun () ->
          (* Backend first: its persistent-reference sweep must unmap
             before blkfront revokes the pool. *)
          Blkback.stop (Blk_app.blkback s.blk_app);
          Process.sleep (Time.ms 1);
          if Kite_race.Race.active () then Kite_race.Race.scoped_quiesce ();
          Blkfront.shutdown blkfront);
      Hypervisor.run_for hv (Time.ms 50);
      match check with
      | Some c ->
          Kite_check.Check.finalize c
            ~pending:(Engine.pending (Hypervisor.engine hv))
      | None -> ())
    :: !teardowns;
  s

let blockdev blk =
  {
    Kite_vfs.Blockdev.name = "xvda";
    capacity_sectors = Blkfront.capacity_sectors blk.blkfront;
    read = (fun ~sector ~count -> Blkfront.read blk.blkfront ~sector ~count);
    write = (fun ~sector data -> Blkfront.write blk.blkfront ~sector data);
    flush = (fun () -> Blkfront.flush blk.blkfront);
  }

let when_blk_ready blk f =
  Hypervisor.spawn blk.bhv blk.bdomu ~name:"when-ready" (fun () ->
      Blkfront.wait_connected blk.blkfront;
      f ())

(* Crash-and-restart cycles (the restart-recovery experiment): destroy
   the driver domain mid-flight, rebuild it with its flavor's boot
   profile, respawn the backend application and re-register the device,
   then wait for the frontend's own recovery to reconnect.  Downtime is
   crash instant -> frontend reconnected. *)

let boot_profile_net = function
  | Kite -> Kite_profiles.Boot.kite_network
  | Linux -> Kite_profiles.Boot.linux_driver_domain

let boot_profile_blk = function
  | Kite -> Kite_profiles.Boot.kite_storage
  | Linux -> Kite_profiles.Boot.linux_driver_domain

let crash_and_restart_blk s ~flavor ~at ?on_restored () =
  let hv = s.bhv in
  Hypervisor.spawn hv (Hypervisor.dom0 hv) ~name:"dd-reboot" (fun () ->
      Process.sleep at;
      let gen0 = Blkfront.reconnects s.blkfront in
      let t0 = Hypervisor.now hv in
      Blkback.crash (Blk_app.blkback s.blk_app);
      Toolstack.crash_driver_domain s.bctx s.bdd;
      Toolstack.restart_driver_domain s.bctx s.bdd
        ~boot:(boot_profile_blk flavor)
        ~respawn:(fun () ->
          s.blk_app <-
            Blk_app.run s.bctx ~domain:s.bdd ~nvme:s.nvme
              ~overheads:(overheads_of flavor) ();
          Toolstack.add_vbd s.bctx ~backend:s.bdd ~frontend:s.bdomu ~devid:0
            ())
        ~on_ready:(fun () ->
          while
            not
              (Blkfront.reconnects s.blkfront > gen0
              && Blkfront.is_connected s.blkfront)
          do
            Process.sleep (Time.ms 1)
          done;
          let downtime = Hypervisor.now hv - t0 in
          (match s.bctx.Xen_ctx.flight with
          | Some fl ->
              Kite_flight.Flight.mark fl ~what:"recovery"
                ~msg:
                  (Printf.sprintf "blkfront reconnected, downtime %d ns"
                     downtime)
          | None -> ());
          match on_restored with Some f -> f ~downtime | None -> ()))

let crash_and_restart_net s ~flavor ~at ?on_restored () =
  let hv = s.hv in
  Hypervisor.spawn hv (Hypervisor.dom0 hv) ~name:"dd-reboot" (fun () ->
      Process.sleep at;
      let gen0 = Netfront.reconnects s.netfront in
      let t0 = Hypervisor.now hv in
      Netback.crash (Net_app.netback s.net_app);
      Toolstack.crash_driver_domain s.ctx s.dd;
      Toolstack.restart_driver_domain s.ctx s.dd
        ~boot:(boot_profile_net flavor)
        ~respawn:(fun () ->
          (* Same physical NIC: the respawned app re-wraps it and builds a
             fresh bridge; the crashed app's bridge is orphaned. *)
          s.net_app <-
            Net_app.run s.ctx ~domain:s.dd ~nic:s.server_nic
              ~overheads:(overheads_of flavor) ();
          Toolstack.add_vif s.ctx ~backend:s.dd ~frontend:s.domu ~devid:0 ())
        ~on_ready:(fun () ->
          while
            not
              (Netfront.reconnects s.netfront > gen0
              && Netfront.connected s.netfront)
          do
            Process.sleep (Time.ms 1)
          done;
          let downtime = Hypervisor.now hv - t0 in
          (match s.ctx.Xen_ctx.flight with
          | Some fl ->
              Kite_flight.Flight.mark fl ~what:"recovery"
                ~msg:
                  (Printf.sprintf "netfront reconnected, downtime %d ns"
                     downtime)
          | None -> ());
          match on_restored with Some f -> f ~downtime | None -> ()))

let network_with_overheads ~overheads ?seed () =
  network ~overheads_override:overheads ~flavor:Kite ?seed ()
