(** Render {!Kite_path.Path} attribution as report tables.

    [kite_ctl path] prints these; the latency-waterfall experiment feeds
    {!saturation_table} with one row per offered-rate step. *)

val waterfall_table : Kite_path.Path.t list -> Kite_stats.Table.t
(** The p99 waterfall: one row per (machine, kind, stage) with class,
    occurrence count, p50/p99 and the stage's share of the kind's
    end-to-end time, followed by a TOTAL row per kind splitting the
    end-to-end time into queueing / service / notify. *)

val devices_table : Kite_path.Path.t list -> Kite_stats.Table.t
(** Per device instance (vif0, xvda, ...): spans and total time. *)

val cpu_table : Kite_path.Path.t list -> Kite_stats.Table.t
(** The continuous CPU profile: busy ns per (domain, process), busiest
    first, with each row's share of the machine's attributed total. *)

type saturation_row = {
  sat_rate : float;  (** offered rate, requests/s *)
  sat_offered : int;
  sat_completed : int;
  sat_p99_ms : float;  (** end-to-end p99 *)
  sat_queue_ms : float;  (** total queueing time, ms *)
  sat_service_ms : float;  (** total service time, ms *)
}

val saturation_table : kind:string -> saturation_row list -> Kite_stats.Table.t
(** The offered-load sweep: queueing/service share per rate step; the
    knee is the first row where queueing overtakes service. *)
