(** Render {!Kite_metrics.Registry} data as report tables.

    [kite_ctl top] and [kite_ctl metrics] print these; the Prometheus
    and JSON exporters live in [kite_metrics] itself.  Everything here
    reads through the same polled registry the /metrics route exposes,
    so the surfaces cannot disagree. *)

val top_table : Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** One row per machine registry: tx/rx packet rates and block I/O rate
    (frontend view, from sampled series deltas), worst ring occupancy,
    active grants, persistent-grant pool size, block latency p50/p99 and
    the alert count. *)

val alerts_table : Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** Every structured health alert raised so far, in (machine, time)
    order as stored. *)

val families_table : Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** The registered metric families per machine with kind and help text
    ([kite_ctl metrics --list]). *)
