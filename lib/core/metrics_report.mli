(** Render {!Kite_metrics.Registry} data as report tables.

    [kite_ctl top] and [kite_ctl metrics] print these; the Prometheus
    and JSON exporters live in [kite_metrics] itself.  Everything here
    reads through the same polled registry the /metrics route exposes,
    so the surfaces cannot disagree. *)

type sort = By_rate | By_busy
(** Row ordering for {!top_table}: [By_rate] = summed frontend tx + rx +
    io per-second rates, [By_busy] = the machine's busiest histogram
    (most observations).  Both keys read the same polled registry the
    rows print, descending. *)

val top_table : ?sort:sort -> Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** One row per machine registry: tx/rx packet rates and block I/O rate
    (frontend view, from sampled series deltas), worst ring occupancy,
    active grants, persistent-grant pool size, block latency p50/p99 and
    the alert count.  Rows keep build order unless [sort] is given
    ([kite_ctl top --sort rate|busy]). *)

val alerts_table : Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** Every structured health alert raised so far, in (machine, time)
    order as stored. *)

val families_table : Kite_metrics.Registry.t list -> Kite_stats.Table.t
(** The registered metric families per machine with kind and help text
    ([kite_ctl metrics --list]). *)
