(** Rendered tables for the swarm experiment. *)

val campaign_table : Kite_swarm.Swarm.result list -> Kite_stats.Table.t

val sweep_table :
  app:string ->
  (string * Kite_swarm.Oracle.step list * Kite_swarm.Oracle.verdict) list ->
  Kite_stats.Table.t
(** One row group per flavor; knee / collapse steps are marked. *)
