(** One runner per table and figure in the paper's evaluation (§5), plus
    the ablations of DESIGN.md.  Each returns rendered tables; the bench
    harness prints them and EXPERIMENTS.md records paper-vs-measured.

    [quick] scales down request counts / durations / image sizes for a
    fast smoke pass; the shape claims hold at either scale. *)

type outcome = {
  exp_id : string;
  tables : Kite_stats.Table.t list;
}

val fig1a : quick:bool -> outcome
(** Driver CVEs per year, Linux vs Windows. *)

val fig4a : quick:bool -> outcome
(** Syscall counts per domain flavor. *)

val fig4b : quick:bool -> outcome
(** Image sizes. *)

val fig4c : quick:bool -> outcome
(** Boot times, replayed on the simulator. *)

val fig5 : quick:bool -> outcome
(** ROP gadgets by category across kernel configurations (also Fig 1b). *)

val table3 : quick:bool -> outcome
(** CVEs mitigated by syscall removal. *)

val fig6 : quick:bool -> outcome
(** nuttcp UDP throughput. *)

val fig7 : quick:bool -> outcome
(** ping / netperf / memtier latency. *)

val fig8a : quick:bool -> outcome
(** Apache throughput vs file size. *)

val fig8b : quick:bool -> outcome
(** Apache at 512 KiB: throughput, transfer time, request rate. *)

val fig9 : quick:bool -> outcome
(** Redis pipelined SET/GET ops/s vs thread count. *)

val fig10 : quick:bool -> outcome
(** MySQL (network path): throughput vs threads, and DomU CPU
    utilization (10a + 10b). *)

val table4 : quick:bool -> outcome
(** Relative standard deviations over repeated runs. *)

val fig11 : quick:bool -> outcome
(** dd sequential read/write throughput. *)

val fig12 : quick:bool -> outcome
(** sysbench fileio vs threads (a) and block size (b). *)

val fig13 : quick:bool -> outcome
(** MySQL (storage path) throughput vs threads. *)

val fig14 : quick:bool -> outcome
(** filebench fileserver vs I/O size. *)

val fig15 : quick:bool -> outcome
(** filebench MongoDB personality. *)

val fig16 : quick:bool -> outcome
(** filebench webserver personality. *)

val dhcp : quick:bool -> outcome
(** perfdhcp against the unikernel DHCP daemon VM (§5.5). *)

val table1 : quick:bool -> outcome
(** The paper's LoC table mapped onto this repository's modules. *)

val abl_persistent : quick:bool -> outcome
val abl_batching : quick:bool -> outcome
val abl_indirect : quick:bool -> outcome
val abl_wake : quick:bool -> outcome

val mq_scale : quick:bool -> outcome
(** Multi-queue dataplane scaling: aggregate net Tx throughput over
    1/2/4/8 negotiated queues (driver domain vCPUs matched to the queue
    count). *)

val mq_overhead : quick:bool -> float * float
(** (legacy single-ring Gbps, 1-queue multi-queue Gbps) on an identical
    workload — the [bench --mq-overhead] gate's raw numbers. *)

val mq_run_gbps : duration:Kite_sim.Time.span -> mq:bool -> int -> float
(** One multi-queue throughput measurement: [mq_run_gbps ~duration ~mq n]
    is aggregate guest-Tx Gbps with [n] queues ([mq:false] forces the
    legacy flat layout; [n] must then be 1). *)

val latency_waterfall : quick:bool -> outcome
(** Critical-path attribution: the per-stage p50/p99 waterfall for the
    net and storage paths under open-loop load (stage durations sum to
    the end-to-end time within 1%, enforced), plus an offered-rate sweep
    over the measured storage capacity locating the saturation knee
    where queueing time overtakes service time (also enforced). *)

val swarm : quick:bool -> outcome
(** Open-loop client-population load (ROADMAP item 3): a six-figure
    headline campaign through Kite httpd reported against SLO targets,
    then offered-load sweeps past the knee for httpd and kvstore on both
    flavors.  The runner fails unless every flavor shows a saturation
    knee and the Kite flavor degrades gracefully past it (goodput
    plateau, bounded p999, zero request errors); where the Linux flavor
    collapses is recorded, not asserted. *)

val swarm_campaign :
  ?flavor:Scenario.flavor ->
  ?app:string ->
  ?impair:Kite_net.Impair.spec ->
  ?profile:string ->
  ?clients:int ->
  ?rate:float ->
  ?seed:int ->
  unit ->
  Kite_swarm.Swarm.result
(** One swarm run on a fresh testbed: [app] is one of
    httpd/kvstore/memcache/sqldb, [profile] a
    {!Kite_swarm.Profile.builtins} name, [rate] an optional session-rate
    override.  The [kite_ctl swarm] subcommand is a thin wrapper.
    Raises [Invalid_argument] on an unknown profile and [Failure] on an
    unknown app. *)

val all : (string * string * (quick:bool -> outcome)) list
(** (id, description, runner), in paper order then ablations. *)

val find : string -> (quick:bool -> outcome) option
