open Kite_sim
open Kite_stats
open Kite_profiles
open Kite_security
module BT = Kite_bench_tools

type outcome = { exp_id : string; tables : Table.t list }

let fnum = Table.fmt_f
let fint = string_of_int

(* Drive a hypervisor until the experiment deposits its result. *)
let drive hv result what =
  Kite_xen.Hypervisor.run_for hv (Time.sec 7200);
  match !result with
  | Some v -> v
  | None -> failwith (what ^ ": experiment did not complete")

let both f = (f Scenario.Kite, f Scenario.Linux)

(* ------------------------------------------------------------------ *)
(* Security / size / boot                                              *)
(* ------------------------------------------------------------------ *)

let fig1a ~quick:_ =
  let t =
    Table.create ~title:"Figure 1a: driver CVEs per year (cve.mitre.org)"
      ~columns:
        [ ("year", Table.Left); ("Linux drivers", Table.Right);
          ("Windows drivers", Table.Right) ]
  in
  List.iter
    (fun y ->
      Table.add_row t
        [
          fint y.Cve_db.year_;
          fint y.Cve_db.linux_driver_cves;
          fint y.Cve_db.windows_driver_cves;
        ])
    Cve_db.driver_cves_by_year;
  Table.note t "shape check: counts rise over time; Linux above Windows";
  { exp_id = "fig1a"; tables = [ t ] }

let fig4a ~quick:_ =
  let t =
    Table.create ~title:"Figure 4a: system call counts"
      ~columns:[ ("domain", Table.Left); ("syscalls", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "Kite network domain"; fint (Syscalls.count Syscalls.kite_network) ];
      [ "Kite storage domain"; fint (Syscalls.count Syscalls.kite_storage) ];
      [ "Kite DHCP daemon VM"; fint (Syscalls.count Syscalls.kite_dhcp) ];
      [ "Ubuntu driver domain"; fint (Syscalls.count Syscalls.linux_driver_domain) ];
      [ "Linux full table"; fint (Syscalls.count Syscalls.linux_full) ];
    ];
  Table.note t "paper: Kite 14 (net) / 18 (storage) vs Ubuntu 171 (>=10x)";
  { exp_id = "fig4a"; tables = [ t ] }

let fig4b ~quick:_ =
  let t =
    Table.create ~title:"Figure 4b: image size (MB)"
      ~columns:[ ("image", Table.Left); ("MB", Table.Right) ]
  in
  List.iter
    (fun img ->
      Table.add_row t [ Image.name img; fnum (Image.total_mb img) ])
    [ Image.kite_network; Image.kite_storage; Image.kite_dhcp;
      Image.linux_driver_domain ];
  let ratio =
    Image.total_mb Image.linux_driver_domain /. Image.total_mb Image.kite_network
  in
  Table.note t
    (Printf.sprintf "Linux/Kite ratio %.1fx (paper: ~10x bigger)" ratio);
  { exp_id = "fig4b"; tables = [ t ] }

let fig4c ~quick:_ =
  (* Replay the boot sequences on one simulator. *)
  let engine = Engine.create () in
  let sched = Process.scheduler engine in
  let results = ref [] in
  List.iter
    (fun boot ->
      Boot.run sched boot ~on_ready:(fun at ->
          results := (Boot.name boot, at) :: !results))
    [ Boot.kite_network; Boot.kite_storage; Boot.kite_dhcp;
      Boot.linux_driver_domain ];
  Engine.run engine;
  let t =
    Table.create ~title:"Figure 4c: boot time (simulated)"
      ~columns:[ ("domain", Table.Left); ("boot time (s)", Table.Right) ]
  in
  List.iter
    (fun (name, at) -> Table.add_row t [ name; fnum (Time.to_sec_f at) ])
    (List.rev !results);
  Table.note t "paper: Kite 7 s vs Linux 75 s (>=10x faster, claim C1)";
  { exp_id = "fig4c"; tables = [ t ] }

let fig5 ~quick =
  let configs =
    if quick then
      List.map
        (fun c ->
          { c with Image_gen.text_kb = c.Image_gen.text_kb / 8 })
        Image_gen.all
    else Image_gen.all
  in
  let t =
    Table.create
      ~title:"Figure 5 (and 1b): ROP gadgets by category"
      ~columns:
        (("config", Table.Left)
        :: List.map
             (fun c -> (Decoder.category_name c, Table.Right))
             Decoder.all_categories
        @ [ ("total", Table.Right) ])
  in
  let totals = ref [] in
  List.iter
    (fun cfg ->
      let counts = Gadget.scan (Image_gen.generate cfg) in
      let total = Gadget.total counts in
      totals := (cfg.Image_gen.config_name, total) :: !totals;
      Table.add_row t
        (cfg.Image_gen.config_name
         :: List.map (fun (_, n) -> fint n) counts
        @ [ fint total ]))
    configs;
  (match (List.assoc_opt "Kite" !totals, List.assoc_opt "Default" !totals) with
  | Some k, Some d ->
      Table.note t
        (Printf.sprintf
           "Default/Kite ratio %.1fx (paper: default config has ~4x Kite's gadgets)"
           (float_of_int d /. float_of_int k))
  | _ -> ());
  { exp_id = "fig5"; tables = [ t ] }

let table3 ~quick:_ =
  let kite_net = Os_profile.get Os_profile.Kite_network in
  let kite_stor = Os_profile.get Os_profile.Kite_storage in
  let linux = Os_profile.get Os_profile.Linux_network in
  let t =
    Table.create ~title:"Table 3: CVEs prevented by syscall removal"
      ~columns:
        [ ("CVE", Table.Left); ("gating syscalls", Table.Left);
          ("hits Linux DD", Table.Left); ("mitigated (net)", Table.Left);
          ("mitigated (storage)", Table.Left) ]
  in
  List.iter
    (fun cve ->
      let syscalls =
        List.concat_map
          (function Cve_db.Syscall l -> l | _ -> [])
          cve.Cve_db.preconditions
        |> String.concat ", "
      in
      Table.add_row t
        [
          cve.Cve_db.id;
          syscalls;
          (if Cve_db.applicable linux cve then "yes" else "no");
          (if Cve_db.mitigated_by_kite ~kite:kite_net ~linux cve then "yes"
           else "no");
          (if Cve_db.mitigated_by_kite ~kite:kite_stor ~linux cve then "yes"
           else "no");
        ])
    Cve_db.table3;
  let t2 =
    Table.create ~title:"Xen tooling CVEs shed with the userland"
      ~columns:
        [ ("CVE", Table.Left); ("hits Linux DD", Table.Left);
          ("hits Kite", Table.Left) ]
  in
  List.iter
    (fun cve ->
      Table.add_row t2
        [
          cve.Cve_db.id;
          (if Cve_db.applicable linux cve then "yes" else "no");
          (if Cve_db.applicable kite_net cve then "yes" else "no");
        ])
    Cve_db.tooling;
  { exp_id = "table3"; tables = [ t; t2 ] }

(* ------------------------------------------------------------------ *)
(* Network domain performance                                          *)
(* ------------------------------------------------------------------ *)

let fig6 ~quick =
  let duration = if quick then Time.ms 20 else Time.ms 200 in
  let run flavor =
    let s = Scenario.network ~flavor () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        BT.Nuttcp.run ~sched:s.Scenario.sched ~client:s.Scenario.client_stack
          ~server:s.Scenario.guest_stack ~server_ip:s.Scenario.guest_ip
          ~duration
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.hv result "fig6"
  in
  let k, l = both run in
  let t =
    Table.create ~title:"Figure 6: nuttcp UDP throughput (10GbE)"
      ~columns:
        [ ("driver domain", Table.Left); ("throughput (Gbps)", Table.Right);
          ("loss (%)", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "Linux"; fnum l.BT.Nuttcp.throughput_gbps; fnum l.BT.Nuttcp.loss_pct ];
      [ "Kite"; fnum k.BT.Nuttcp.throughput_gbps; fnum k.BT.Nuttcp.loss_pct ];
    ];
  Table.note t "paper: ~7 Gbps for both, <1.5% loss";
  { exp_id = "fig6"; tables = [ t ] }

let fig7 ~quick =
  let ping_count = if quick then 10 else 50 in
  let np_requests = if quick then 200 else 1000 in
  let mt_ops = if quick then 1100 else 22_000 in
  let run flavor =
    let s = Scenario.network ~flavor () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        (* Memcached serves from the guest for the memtier leg. *)
        ignore
          (Kite_apps.Memcache.start s.Scenario.guest_tcp ~sched:s.Scenario.sched
             ());
        BT.Ping_bench.run ~sched:s.Scenario.sched
          ~client:s.Scenario.client_stack ~dst:s.Scenario.guest_ip
          ~count:ping_count ~interval:(Time.ms 100)
          ~on_done:(fun ping ->
            BT.Netperf.run ~sched:s.Scenario.sched
              ~client:s.Scenario.client_stack ~server:s.Scenario.guest_stack
              ~server_ip:s.Scenario.guest_ip ~requests:np_requests
              ~on_done:(fun np ->
                BT.Memtier.run ~sched:s.Scenario.sched
                  ~client_tcp:s.Scenario.client_tcp
                  ~server_ip:s.Scenario.guest_ip ~ops:mt_ops
                  ~on_done:(fun mt -> result := Some (ping, np, mt))
                  ())
              ())
          ());
    drive s.Scenario.hv result "fig7"
  in
  let (kp, kn, km), (lp, ln, lm) = both run in
  let t =
    Table.create ~title:"Figure 7: network latency (ms)"
      ~columns:
        [ ("benchmark", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "ping"; fnum ~prec:3 lp.BT.Ping_bench.avg_ms;
        fnum ~prec:3 kp.BT.Ping_bench.avg_ms ];
      [ "netperf"; fnum ~prec:3 ln.BT.Netperf.avg_ms;
        fnum ~prec:3 kn.BT.Netperf.avg_ms ];
      [ "memtier"; fnum ~prec:3 lm.BT.Memtier.avg_latency_ms;
        fnum ~prec:3 km.BT.Memtier.avg_latency_ms ];
    ];
  Table.note t "paper: ping 0.51/0.31, netperf 0.18/0.10, memtier 0.16/0.15";
  (* Bonus: full latency distributions (the paper reports averages). *)
  let td =
    Table.create ~title:"Figure 7 supplement: latency distributions (ms)"
      ~columns:
        [ ("benchmark", Table.Left); ("p50", Table.Right); ("p99", Table.Right);
          ("distribution", Table.Left) ]
  in
  List.iter
    (fun (label, samples) ->
      match samples with
      | [] -> ()
      | _ ->
          let h = Histogram.create ~base:0.01 ~factor:1.3 () in
          Histogram.add_list h samples;
          Table.add_row td
            [
              label;
              fnum ~prec:3 (Histogram.percentile h 50.);
              fnum ~prec:3 (Histogram.percentile h 99.);
              Histogram.sparkline h;
            ])
    [
      ("ping / Linux", lp.BT.Ping_bench.rtts_ms);
      ("ping / Kite", kp.BT.Ping_bench.rtts_ms);
      ("netperf / Linux", ln.BT.Netperf.latencies_ms);
      ("netperf / Kite", kn.BT.Netperf.latencies_ms);
    ];
  { exp_id = "fig7"; tables = [ t; td ] }

(* Cap per-point work for apache so the 1 MiB points stay tractable:
   enough requests to amortize, bounded total bytes. *)
let ab_requests ~quick file_size =
  let budget = if quick then 8 * 1024 * 1024 else 64 * 1024 * 1024 in
  let n = max (if quick then 40 else 200) (budget / max 1 file_size) in
  min (if quick then 4000 else 20_000) n

let run_ab flavor ~quick ~file_size =
  let s = Scenario.network ~flavor () in
  let result = ref None in
  Scenario.when_net_ready s (fun () ->
      ignore
        (Kite_apps.Httpd.start s.Scenario.guest_tcp ~sched:s.Scenario.sched ());
      BT.Ab.run ~sched:s.Scenario.sched ~client_tcp:s.Scenario.client_tcp
        ~server_ip:s.Scenario.guest_ip
        ~requests:(ab_requests ~quick file_size)
        ~concurrency:40 ~file_size
        ~on_done:(fun r -> result := Some r)
        ());
  drive s.Scenario.hv result "apache"

let fig8a ~quick =
  let sizes = [ 512; 4096; 32768; 131072; 524288; 1048576 ] in
  let sizes = if quick then [ 512; 32768; 524288 ] else sizes in
  let t =
    Table.create ~title:"Figure 8a: Apache throughput vs file size"
      ~columns:
        [ ("file size (B)", Table.Right); ("Linux (MB/s)", Table.Right);
          ("Kite (MB/s)", Table.Right); ("Kite/Linux", Table.Right) ]
  in
  List.iter
    (fun size ->
      let k = run_ab Scenario.Kite ~quick ~file_size:size in
      let l = run_ab Scenario.Linux ~quick ~file_size:size in
      Table.add_row t
        [
          fint size;
          fnum l.BT.Ab.throughput_mbps;
          fnum k.BT.Ab.throughput_mbps;
          fnum (k.BT.Ab.throughput_mbps /. l.BT.Ab.throughput_mbps);
        ])
    sizes;
  Table.note t "paper: curves overlap; throughput grows with file size";
  { exp_id = "fig8a"; tables = [ t ] }

let fig8b ~quick =
  let k = run_ab Scenario.Kite ~quick ~file_size:524288 in
  let l = run_ab Scenario.Linux ~quick ~file_size:524288 in
  let t =
    Table.create ~title:"Figure 8b: Apache, 512 KiB file, 40 concurrent"
      ~columns:
        [ ("metric", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "throughput (MB/s)"; fnum l.BT.Ab.throughput_mbps;
        fnum k.BT.Ab.throughput_mbps ];
      [ "time taken (s)"; fnum l.BT.Ab.time_taken_s; fnum k.BT.Ab.time_taken_s ];
      [ "requests/s"; fnum l.BT.Ab.requests_per_sec;
        fnum k.BT.Ab.requests_per_sec ];
    ];
  Table.note t "paper: Kite marginally faster on all three";
  { exp_id = "fig8b"; tables = [ t ] }

let fig9 ~quick =
  let threads_list = [ 5; 10; 15; 20 ] in
  let ops = if quick then 2000 else 10_000 in
  let run flavor threads =
    let s = Scenario.network ~flavor () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        ignore
          (Kite_apps.Kvstore.start s.Scenario.guest_tcp ~sched:s.Scenario.sched
             ());
        BT.Redis_bench.run ~sched:s.Scenario.sched
          ~client_tcp:s.Scenario.client_tcp ~server_ip:s.Scenario.guest_ip
          ~threads ~ops_per_thread:ops ~value_size:128
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.hv result "fig9"
  in
  let t =
    Table.create ~title:"Figure 9: Redis SET/GET throughput (pipeline 1000)"
      ~columns:
        [ ("threads", Table.Right); ("Linux SET (op/s)", Table.Right);
          ("Kite SET (op/s)", Table.Right); ("Linux GET (op/s)", Table.Right);
          ("Kite GET (op/s)", Table.Right) ]
  in
  List.iter
    (fun threads ->
      let k = run Scenario.Kite threads in
      let l = run Scenario.Linux threads in
      Table.add_row t
        [
          fint threads;
          Table.fmt_si l.BT.Redis_bench.set_ops_per_sec;
          Table.fmt_si k.BT.Redis_bench.set_ops_per_sec;
          Table.fmt_si l.BT.Redis_bench.get_ops_per_sec;
          Table.fmt_si k.BT.Redis_bench.get_ops_per_sec;
        ])
    threads_list;
  Table.note t "paper: Kite and Linux netback exhibit similar performance";
  { exp_id = "fig9"; tables = [ t ] }

(* A sysbench read-only query against the paper's 2.2 GHz Xeon costs on
   the order of a millisecond of server CPU; this is what makes the
   network-path delta invisible in Figure 10a. *)
(* A sysbench read-only query costs ~30 us of MySQL CPU; most of the
   per-query wall time is protocol round trips and sysbench's own
   client-side work, which is what makes the network-path delta nearly
   invisible in Figure 10a. *)
let sysbench_cpu_per_query = Time.us 30

let fig10 ~quick =
  let threads_list = if quick then [ 5; 20; 60 ] else [ 5; 10; 20; 40; 60 ] in
  let tx_per_thread = if quick then 8 else 25 in
  let run flavor threads =
    let s = Scenario.network ~flavor () in
    let hv = s.Scenario.hv in
    let result = ref None in
    let started = ref Time.zero in
    Scenario.when_net_ready s (fun () ->
        started := Kite_xen.Hypervisor.now hv;
        ignore
          (Kite_apps.Sqldb.start s.Scenario.guest_tcp
             ~cpu_per_query:sysbench_cpu_per_query
             ~charge:(fun span ->
               Kite_xen.Hypervisor.cpu_work hv s.Scenario.domu span)
             ~backend:Kite_apps.Sqldb.Memory ~tables:10
             ~rows_per_table:1_000_000 ~sched:s.Scenario.sched ());
        BT.Sysbench_db.run ~sched:s.Scenario.sched
          ~client_tcp:s.Scenario.client_tcp ~server_ip:s.Scenario.guest_ip
          ~threads ~transactions_per_thread:tx_per_thread ~seed:(7 + threads)
          ~on_done:(fun r ->
            result :=
              Some (r, Kite_xen.Hypervisor.now hv - !started))
          ());
    let r, elapsed = drive s.Scenario.hv result "fig10" in
    (* DomU CPU utilization from the hypervisor's busy accounting, as
       sysstat would report it: % of the guest's 22 vCPUs. *)
    let busy = Metrics.busy (Kite_xen.Hypervisor.metrics hv) "vcpu.domu" in
    let util =
      float_of_int busy /. float_of_int (max 1 elapsed) /. 22.0 *. 100.0
    in
    (r, util)
  in
  let ta =
    Table.create ~title:"Figure 10a: MySQL (network path) throughput"
      ~columns:
        [ ("threads", Table.Right); ("Linux (q/s)", Table.Right);
          ("Kite (q/s)", Table.Right) ]
  in
  let tb =
    Table.create ~title:"Figure 10b: DomU CPU utilization (%)"
      ~columns:
        [ ("threads", Table.Right); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  List.iter
    (fun threads ->
      let kr, ku = run Scenario.Kite threads in
      let lr, lu = run Scenario.Linux threads in
      Table.add_row ta
        [ fint threads; fnum lr.BT.Sysbench_db.qps; fnum kr.BT.Sysbench_db.qps ];
      Table.add_row tb [ fint threads; fnum lu; fnum ku ])
    threads_list;
  Table.note ta "paper: almost no difference between Linux and Kite netback";
  Table.note tb "paper: DomU utilization very similar for both";
  { exp_id = "fig10"; tables = [ ta; tb ] }

let table4 ~quick =
  let repeats = 3 in
  let seeds = List.init repeats (fun i -> 100 + i) in
  let samples_of runner = List.map runner seeds in
  let rsd xs = Summary.rsd_pct xs in
  let jitter seed = Process.sleep (Time.us (seed * 37 mod 211)) in
  let apache flavor seed =
    let s = Scenario.network ~flavor ~seed () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        jitter seed;
        ignore
          (Kite_apps.Httpd.start s.Scenario.guest_tcp ~sched:s.Scenario.sched ());
        BT.Ab.run ~sched:s.Scenario.sched ~client_tcp:s.Scenario.client_tcp
          ~server_ip:s.Scenario.guest_ip ~seed
          ~requests:(if quick then 120 else 600)
          ~concurrency:40 ~file_size:131072
          ~on_done:(fun r -> result := Some r)
          ());
    (drive s.Scenario.hv result "table4-apache").BT.Ab.requests_per_sec
  in
  let redis flavor seed =
    let s = Scenario.network ~flavor ~seed () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        jitter seed;
        ignore
          (Kite_apps.Kvstore.start s.Scenario.guest_tcp ~sched:s.Scenario.sched
             ());
        BT.Redis_bench.run ~sched:s.Scenario.sched
          ~client_tcp:s.Scenario.client_tcp ~server_ip:s.Scenario.guest_ip
          ~threads:10 ~seed
          ~ops_per_thread:(if quick then 1000 else 4000)
          ~on_done:(fun r -> result := Some r)
          ());
    (drive s.Scenario.hv result "table4-redis").BT.Redis_bench.get_ops_per_sec
  in
  let memtier flavor seed =
    let s = Scenario.network ~flavor ~seed () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        jitter seed;
        ignore
          (Kite_apps.Memcache.start s.Scenario.guest_tcp ~sched:s.Scenario.sched
             ());
        BT.Memtier.run ~sched:s.Scenario.sched
          ~client_tcp:s.Scenario.client_tcp ~server_ip:s.Scenario.guest_ip
          ~ops:(if quick then 1100 else 5500) ~seed
          ~on_done:(fun r -> result := Some r)
          ());
    (drive s.Scenario.hv result "table4-memtier").BT.Memtier.ops_per_sec
  in
  let sysbench flavor seed =
    let s = Scenario.network ~flavor ~seed () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        jitter seed;
        ignore
          (Kite_apps.Sqldb.start s.Scenario.guest_tcp
             ~backend:Kite_apps.Sqldb.Memory ~tables:10
             ~rows_per_table:1_000_000 ~sched:s.Scenario.sched ());
        BT.Sysbench_db.run ~sched:s.Scenario.sched
          ~client_tcp:s.Scenario.client_tcp ~server_ip:s.Scenario.guest_ip
          ~threads:10 ~transactions_per_thread:(if quick then 5 else 15)
          ~seed
          ~on_done:(fun r -> result := Some r)
          ());
    (drive s.Scenario.hv result "table4-sysbench").BT.Sysbench_db.qps
  in
  let t =
    Table.create ~title:"Table 4: relative standard deviation (%)"
      ~columns:
        [ ("benchmark", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  List.iter
    (fun (name, runner) ->
      let l = rsd (samples_of (runner Scenario.Linux)) in
      let k = rsd (samples_of (runner Scenario.Kite)) in
      Table.add_row t [ name; fnum ~prec:4 l; fnum ~prec:4 k ])
    [
      ("Apache (req/s)", apache);
      ("Redis (GET op/s)", redis);
      ("Memtier (op/s)", memtier);
      ("Sysbench (q/s)", sysbench);
    ];
  Table.note t
    "paper: all RSDs tiny (<=1.5%); the deterministic simulator gives ~0 \
     except where seeds perturb schedules";
  { exp_id = "table4"; tables = [ t ] }

(* ------------------------------------------------------------------ *)
(* Storage domain performance                                          *)
(* ------------------------------------------------------------------ *)

let fig11 ~quick =
  let total = if quick then 32 * 1024 * 1024 else 256 * 1024 * 1024 in
  let run flavor direction =
    let s = Scenario.storage ~flavor () in
    let result = ref None in
    Scenario.when_blk_ready s (fun () ->
        BT.Dd.run ~sched:s.Scenario.bsched ~dev:(Scenario.blockdev s)
          ~direction ~total
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.bhv result "fig11"
  in
  let t =
    Table.create ~title:"Figure 11: dd sequential throughput (MB/s)"
      ~columns:
        [ ("direction", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  List.iter
    (fun (label, direction) ->
      let k = run Scenario.Kite direction in
      let l = run Scenario.Linux direction in
      Table.add_row t
        [ label; fnum l.BT.Dd.throughput_mbs; fnum k.BT.Dd.throughput_mbs ])
    [ ("read", `Read); ("write", `Write) ];
  Table.note t "paper: ~1 GB/s both directions, Linux and Kite similar";
  { exp_id = "fig11"; tables = [ t ] }

let with_fs flavor ~prepare_fn ~run_fn =
  let s = Scenario.storage ~flavor () in
  let result = ref None in
  Scenario.when_blk_ready s (fun () ->
      let fs = Kite_vfs.Fs.format (Scenario.blockdev s) in
      prepare_fn fs;
      run_fn s fs (fun r -> result := Some r));
  drive s.Scenario.bhv result "storage-fs"

let fig12 ~quick =
  let files = 8 in
  let file_size = if quick then 2 * 1024 * 1024 else 8 * 1024 * 1024 in
  let fileio flavor ~threads ~block_size ~ops =
    with_fs flavor
      ~prepare_fn:(fun fs -> BT.Sysbench_fileio.prepare fs ~files ~file_size)
      ~run_fn:(fun s fs k ->
        BT.Sysbench_fileio.run ~sched:s.Scenario.bsched ~fs ~files ~file_size
          ~block_size ~threads ~ops_per_thread:ops ~seed:(threads + block_size)
          ~on_done:k ())
  in
  let ta =
    Table.create
      ~title:"Figure 12a: sysbench fileio vs threads (256 KiB blocks)"
      ~columns:
        [ ("threads", Table.Right); ("Linux (MB/s)", Table.Right);
          ("Kite (MB/s)", Table.Right) ]
  in
  let threads_list = if quick then [ 1; 10; 40 ] else [ 1; 5; 10; 20; 40; 100 ] in
  List.iter
    (fun threads ->
      let ops = max 8 (96 / threads) in
      let k = fileio Scenario.Kite ~threads ~block_size:(256 * 1024) ~ops in
      let l = fileio Scenario.Linux ~threads ~block_size:(256 * 1024) ~ops in
      Table.add_row ta
        [
          fint threads;
          fnum l.BT.Sysbench_fileio.throughput_mbps;
          fnum k.BT.Sysbench_fileio.throughput_mbps;
        ])
    threads_list;
  Table.note ta "paper: Kite at least matches Linux; gap grows with threads";
  let tb =
    Table.create
      ~title:"Figure 12b: sysbench fileio vs block size (20 threads)"
      ~columns:
        [ ("block size", Table.Right); ("Linux (MB/s)", Table.Right);
          ("Kite (MB/s)", Table.Right) ]
  in
  let sizes =
    if quick then [ 16 * 1024; 256 * 1024; 1 lsl 20 ]
    else [ 16 * 1024; 64 * 1024; 256 * 1024; 1 lsl 20; 1 lsl 22 ]
  in
  List.iter
    (fun block_size ->
      let ops = max 4 ((4 * 1024 * 1024) / block_size) in
      let k = fileio Scenario.Kite ~threads:20 ~block_size ~ops in
      let l = fileio Scenario.Linux ~threads:20 ~block_size ~ops in
      Table.add_row tb
        [
          Table.fmt_si (float_of_int block_size);
          fnum l.BT.Sysbench_fileio.throughput_mbps;
          fnum k.BT.Sysbench_fileio.throughput_mbps;
        ])
    sizes;
  Table.note tb "paper: throughput rises with block size; Kite >= Linux";
  { exp_id = "fig12"; tables = [ ta; tb ] }

let fig13 ~quick =
  let threads_list = if quick then [ 1; 10; 40 ] else [ 1; 5; 10; 20; 40; 100 ] in
  let tx_per_thread = if quick then 4 else 10 in
  let run flavor threads =
    let s = Scenario.storage ~flavor () in
    let result = ref None in
    Scenario.when_blk_ready s (fun () ->
        (* The DB server lives in DomU; the sysbench client talks to it
           over a management link that bypasses the storage domain, so
           the variable under test is the disk path. *)
        let da, db = Kite_net.Netdev.pipe ~name_a:"mgmt-db" ~name_b:"mgmt-ld" in
        let db_stack =
          Kite_net.Stack.create s.Scenario.bsched ~name:"db" ~dev:da
            ~mac:(Kite_net.Macaddr.make_local 31)
            ~ip:(Kite_net.Ipv4addr.of_string "172.16.0.1")
            ~netmask:(Kite_net.Ipv4addr.of_string "255.255.255.0")
            ()
        in
        let load_stack =
          Kite_net.Stack.create s.Scenario.bsched ~name:"load" ~dev:db
            ~mac:(Kite_net.Macaddr.make_local 32)
            ~ip:(Kite_net.Ipv4addr.of_string "172.16.0.2")
            ~netmask:(Kite_net.Ipv4addr.of_string "255.255.255.0")
            ()
        in
        let db_tcp = Kite_net.Tcp.attach db_stack in
        let load_tcp = Kite_net.Tcp.attach load_stack in
        let dev = Scenario.blockdev s in
        ignore
          (Kite_apps.Sqldb.start db_tcp
             ~backend:
               (Kite_apps.Sqldb.Raw
                  {
                    read = dev.Kite_vfs.Blockdev.read;
                    write = dev.Kite_vfs.Blockdev.write;
                    (* small pool: the 20 GB working set misses to disk *)
                    buffer_pool_rows = 2048;
                  })
             ~tables:100 ~rows_per_table:100_000 ~sched:s.Scenario.bsched ());
        BT.Sysbench_db.run ~sched:s.Scenario.bsched ~client_tcp:load_tcp
          ~server_ip:(Kite_net.Ipv4addr.of_string "172.16.0.1")
          ~tables:100 ~rows_per_table:100_000 ~threads
          ~transactions_per_thread:tx_per_thread ~range_size:50
          ~seed:(31 + threads)
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.bhv result "fig13"
  in
  let t =
    Table.create ~title:"Figure 13: MySQL (storage path) throughput"
      ~columns:
        [ ("threads", Table.Right); ("Linux (Kbps)", Table.Right);
          ("Kite (Kbps)", Table.Right) ]
  in
  List.iter
    (fun threads ->
      let k = run Scenario.Kite threads in
      let l = run Scenario.Linux threads in
      (* sysbench reports row payload throughput. *)
      let kbps r =
        r.BT.Sysbench_db.qps *. float_of_int Kite_apps.Sqldb.row_size
        *. 8.0 /. 1000.0
      in
      Table.add_row t [ fint threads; fnum (kbps l); fnum (kbps k) ])
    threads_list;
  Table.note t "paper: identical curves for Linux and Kite";
  { exp_id = "fig13"; tables = [ t ] }

let fig14 ~quick =
  let files = if quick then 24 else 80 in
  let mean_file_size = 128 * 1024 in
  let run flavor io_size =
    with_fs flavor
      ~prepare_fn:(fun fs ->
        BT.Filebench.prepare fs BT.Filebench.Fileserver ~files ~mean_file_size)
      ~run_fn:(fun s fs k ->
        BT.Filebench.run ~sched:s.Scenario.bsched ~fs BT.Filebench.Fileserver
          ~files ~mean_file_size ~io_size ~threads:50
          ~ops_per_thread:(if quick then 4 else 10)
          ~seed:io_size ~on_done:k ())
  in
  let t =
    Table.create ~title:"Figure 14: filebench fileserver throughput"
      ~columns:
        [ ("I/O size", Table.Right); ("Linux (MB/s)", Table.Right);
          ("Kite (MB/s)", Table.Right) ]
  in
  let sizes =
    if quick then [ 16 * 1024; 128 * 1024; 1 lsl 20 ]
    else [ 16 * 1024; 64 * 1024; 128 * 1024; 512 * 1024; 1 lsl 20; 1 lsl 22 ]
  in
  List.iter
    (fun io_size ->
      let k = run Scenario.Kite io_size in
      let l = run Scenario.Linux io_size in
      Table.add_row t
        [
          Table.fmt_si (float_of_int io_size);
          fnum l.BT.Filebench.throughput_mbps;
          fnum k.BT.Filebench.throughput_mbps;
        ])
    sizes;
  Table.note t "paper: Kite's storage domain often slightly ahead of Linux";
  { exp_id = "fig14"; tables = [ t ] }

let filebench_single ~quick personality ~files ~mean_file_size ~io_size
    ~threads ~ops =
  let run flavor =
    with_fs flavor
      ~prepare_fn:(fun fs ->
        BT.Filebench.prepare fs personality ~files ~mean_file_size)
      ~run_fn:(fun s fs k ->
        BT.Filebench.run ~sched:s.Scenario.bsched ~fs personality ~files
          ~mean_file_size ~io_size ~threads
          ~ops_per_thread:(if quick then max 2 (ops / 4) else ops)
          ~seed:42 ~on_done:k ())
  in
  both run

let fig15 ~quick =
  let k, l =
    filebench_single ~quick BT.Filebench.Mongodb ~files:4
      ~mean_file_size:(8 * 1024 * 1024) ~io_size:(4 * 1024 * 1024) ~threads:1
      ~ops:12
  in
  let t =
    Table.create ~title:"Figure 15: filebench MongoDB personality"
      ~columns:
        [ ("metric", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "throughput (MB/s)"; fnum l.BT.Filebench.throughput_mbps;
        fnum k.BT.Filebench.throughput_mbps ];
      [ "service time (us/op)"; fnum l.BT.Filebench.us_per_op;
        fnum k.BT.Filebench.us_per_op ];
      [ "latency (ms)"; fnum l.BT.Filebench.avg_latency_ms;
        fnum k.BT.Filebench.avg_latency_ms ];
    ];
  Table.note t "paper: Kite outperforms Linux even at low concurrency";
  { exp_id = "fig15"; tables = [ t ] }

let fig16 ~quick =
  let k, l =
    filebench_single ~quick BT.Filebench.Webserver
      ~files:(if quick then 24 else 100)
      ~mean_file_size:(64 * 1024) ~io_size:(16 * 1024) ~threads:50 ~ops:8
  in
  let t =
    Table.create ~title:"Figure 16: filebench webserver personality"
      ~columns:
        [ ("metric", Table.Left); ("Linux", Table.Right);
          ("Kite", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "throughput (MB/s)"; fnum l.BT.Filebench.throughput_mbps;
        fnum k.BT.Filebench.throughput_mbps ];
      [ "service time (us/op)"; fnum l.BT.Filebench.us_per_op;
        fnum k.BT.Filebench.us_per_op ];
      [ "latency (ms)"; fnum l.BT.Filebench.avg_latency_ms;
        fnum k.BT.Filebench.avg_latency_ms ];
    ];
  Table.note t "paper: Kite slightly higher throughput, lower latency";
  { exp_id = "fig16"; tables = [ t ] }

(* ------------------------------------------------------------------ *)
(* Daemon VM                                                           *)
(* ------------------------------------------------------------------ *)

let dhcp ~quick =
  let clients = if quick then 20 else 50 in
  (* §5.5 swaps the daemon VM itself (rumprun vs Linux) behind the same
     network path; the Linux daemon pays a deeper in-VM stack and
     scheduler path per message. *)
  let run daemon_cpu rx_cost =
    let s = Scenario.network ~flavor:Scenario.Kite () in
    let result = ref None in
    ignore rx_cost;
    Scenario.when_net_ready s (fun () ->
        ignore
          (Kite_apps.Dhcp_server.start s.Scenario.guest_stack
             ~sched:s.Scenario.sched ~server_ip:s.Scenario.guest_ip
             ~pool_start:(Kite_net.Ipv4addr.of_string "10.0.0.100")
             ~pool_size:200 ~cpu_per_message:daemon_cpu ());
        BT.Perfdhcp.run ~sched:s.Scenario.sched ~client:s.Scenario.client_stack
          ~server_ip:s.Scenario.guest_ip ~clients ~interval:(Time.ms 100)
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.hv result "dhcp"
  in
  let k = run (Time.us 25) 0 in
  let l = run (Time.us 55) 0 in
  let t =
    Table.create ~title:"§5.5: DHCP daemon VM (perfdhcp delays, ms)"
      ~columns:
        [ ("exchange", Table.Left); ("Linux daemon VM", Table.Right);
          ("rumprun daemon VM", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "Discover -> Offer"; fnum ~prec:3 l.BT.Perfdhcp.avg_discover_offer_ms;
        fnum ~prec:3 k.BT.Perfdhcp.avg_discover_offer_ms ];
      [ "Request -> Ack"; fnum ~prec:3 l.BT.Perfdhcp.avg_request_ack_ms;
        fnum ~prec:3 k.BT.Perfdhcp.avg_request_ack_ms ];
    ];
  Table.note t "paper: very similar for rumprun and Linux (~0.78 / ~0.7 ms)";
  { exp_id = "dhcp"; tables = [ t ] }

let table1 ~quick:_ =
  let t =
    Table.create ~title:"Table 1: Kite components (paper LoC -> this repo)"
      ~columns:
        [ ("component", Table.Left); ("paper LoC", Table.Right);
          ("here", Table.Left) ]
  in
  Table.add_rows t
    [
      [ "Blkback"; "1904"; "lib/drivers/blkback.ml + blkif.ml" ];
      [ "Netback"; "2791"; "lib/drivers/netback.ml + netchannel.ml" ];
      [ "HVM extension (xenbus/xenstore)"; "1100";
        "lib/xen/xenstore.ml + xenbus.ml" ];
      [ "Configuration apps"; "450"; "lib/drivers/net_app.ml + blk_app.ml" ];
      [ "Utilities (ifconfig/brconfig)"; "222";
        "lib/net/netdev.ml + bridge.ml" ];
      [ "Daemon VM (OpenDHCP)"; "16"; "lib/apps/dhcp_server.ml" ];
      [ "Total"; "6483"; "" ];
    ];
  { exp_id = "table1"; tables = [ t ] }

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let storage_workload s ~writes k =
  let dev = Scenario.blockdev s in
  Scenario.when_blk_ready s (fun () ->
      let payload = Bytes.make 4096 'a' in
      let t0 = Kite_xen.Hypervisor.now s.Scenario.bhv in
      for i = 0 to writes - 1 do
        dev.Kite_vfs.Blockdev.write ~sector:(i * 8) payload
      done;
      k (Kite_xen.Hypervisor.now s.Scenario.bhv - t0))

let abl_persistent ~quick =
  let writes = if quick then 100 else 400 in
  let run persistent =
    let s =
      Scenario.storage ~flavor:Scenario.Kite ~feature_persistent:persistent ()
    in
    let result = ref None in
    storage_workload s ~writes (fun elapsed -> result := Some elapsed);
    let elapsed = drive s.Scenario.bhv result "abl-persistent" in
    let m = Kite_xen.Hypervisor.metrics s.Scenario.bhv in
    ( elapsed,
      Metrics.count m "hypercall.grant_map",
      Metrics.count m "hypercall.grant_unmap" )
  in
  let e_on, map_on, unmap_on = run true in
  let e_off, map_off, unmap_off = run false in
  let t =
    Table.create
      ~title:"Ablation: persistent grant references (4 KiB writes)"
      ~columns:
        [ ("config", Table.Left); ("grant_map calls", Table.Right);
          ("grant_unmap calls", Table.Right); ("elapsed", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "persistent"; fint map_on; fint unmap_on; Time.to_string e_on ];
      [ "map/unmap per request"; fint map_off; fint unmap_off;
        Time.to_string e_off ];
    ];
  Table.note t "persistent refs eliminate per-request map/unmap hypercalls";
  { exp_id = "abl-persist"; tables = [ t ] }

let abl_batching ~quick =
  let total = if quick then 16 * 1024 * 1024 else 64 * 1024 * 1024 in
  let run batching =
    let s = Scenario.storage ~flavor:Scenario.Kite ~batching () in
    let result = ref None in
    Scenario.when_blk_ready s (fun () ->
        BT.Dd.run ~sched:s.Scenario.bsched ~dev:(Scenario.blockdev s)
          ~direction:`Write ~total
          ~on_done:(fun r -> result := Some r)
          ());
    let r = drive s.Scenario.bhv result "abl-batching" in
    let inst =
      List.hd (Kite_drivers.Blkback.instances (Kite_drivers.Blk_app.blkback s.Scenario.blk_app))
    in
    ( r.BT.Dd.throughput_mbs,
      Kite_drivers.Blkback.requests_served inst,
      Kite_drivers.Blkback.device_ops inst )
  in
  let thr_on, req_on, ops_on = run true in
  let thr_off, req_off, ops_off = run false in
  let t =
    Table.create ~title:"Ablation: consecutive-segment batching (dd write)"
      ~columns:
        [ ("config", Table.Left); ("requests", Table.Right);
          ("device ops", Table.Right); ("MB/s", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "batching"; fint req_on; fint ops_on; fnum thr_on ];
      [ "one op per request"; fint req_off; fint ops_off; fnum thr_off ];
    ];
  Table.note t "batching merges contiguous requests into fewer device ops";
  { exp_id = "abl-batch"; tables = [ t ] }

let abl_indirect ~quick =
  let total = if quick then 16 * 1024 * 1024 else 64 * 1024 * 1024 in
  let run indirect =
    let s = Scenario.storage ~flavor:Scenario.Kite ~feature_indirect:indirect () in
    let result = ref None in
    Scenario.when_blk_ready s (fun () ->
        BT.Dd.run ~sched:s.Scenario.bsched ~dev:(Scenario.blockdev s)
          ~direction:`Read ~total
          ~on_done:(fun r -> result := Some r)
          ());
    let r = drive s.Scenario.bhv result "abl-indirect" in
    (r.BT.Dd.throughput_mbs, Kite_drivers.Blkfront.requests_issued s.Scenario.blkfront)
  in
  let thr_on, req_on = run true in
  let thr_off, req_off = run false in
  let t =
    Table.create
      ~title:"Ablation: indirect segments (1 MiB sequential reads)"
      ~columns:
        [ ("config", Table.Left); ("ring requests", Table.Right);
          ("MB/s", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "indirect (128 KiB/request)"; fint req_on; fnum thr_on ];
      [ "direct only (44 KiB/request)"; fint req_off; fnum thr_off ];
    ];
  Table.note t "paper §3.3: direct segments cap requests at 44 KiB";
  { exp_id = "abl-indirect"; tables = [ t ] }

let abl_wake ~quick =
  (* What the dedicated-thread design buys: compare the normal warm/cold
     wake model against a degraded one where every wakeup pays the cold
     cost (no fast handler-to-thread path). *)
  let requests = if quick then 100 else 400 in
  let run_with ov =
    let s = Scenario.network_with_overheads ~overheads:ov () in
    let result = ref None in
    Scenario.when_net_ready s (fun () ->
        BT.Netperf.run ~sched:s.Scenario.sched ~client:s.Scenario.client_stack
          ~server:s.Scenario.guest_stack ~server_ip:s.Scenario.guest_ip
          ~requests
          ~on_done:(fun r -> result := Some r)
          ());
    drive s.Scenario.hv result "abl-wake"
  in
  let normal = run_with Kite_drivers.Overheads.kite in
  let degraded =
    run_with
      {
        Kite_drivers.Overheads.kite with
        Kite_drivers.Overheads.wake_warm =
          Kite_drivers.Overheads.kite.Kite_drivers.Overheads.wake_cold;
      }
  in
  let t =
    Table.create
      ~title:"Ablation: dedicated worker threads (netperf RR latency)"
      ~columns:[ ("config", Table.Left); ("latency (ms)", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "threaded handlers (kite)"; fnum ~prec:3 normal.BT.Netperf.avg_ms ];
      [ "every wakeup cold"; fnum ~prec:3 degraded.BT.Netperf.avg_ms ];
    ];
  Table.note t
    "paper §3.2: slow handler paths would block subsequent notifications";
  { exp_id = "abl-threads"; tables = [ t ] }

(* §5.2 motivates fast boots with failure recovery: when a driver domain
   is restarted, guests lose I/O until it has booted and the frontends
   have re-paired.  Recovery time = boot replay + the measured
   frontend/backend handshake on a fresh domain. *)
let restart ~quick:_ =
  let handshake_time flavor =
    let s = Scenario.network ~flavor () in
    let t = ref 0 in
    Scenario.when_net_ready s (fun () -> t := Kite_xen.Hypervisor.now s.Scenario.hv);
    Kite_xen.Hypervisor.run_for s.Scenario.hv (Time.sec 2);
    !t
  in
  let t =
    Table.create ~title:"Extension: driver-domain restart recovery time"
      ~columns:
        [ ("flavor", Table.Left); ("boot", Table.Right);
          ("reconnect handshake", Table.Right); ("guest I/O outage", Table.Right) ]
  in
  List.iter
    (fun (flavor, boot) ->
      let hs = handshake_time flavor in
      Table.add_row t
        [
          Scenario.flavor_name flavor;
          Time.to_string (Boot.total boot);
          Time.to_string hs;
          Time.to_string (Boot.total boot + hs);
        ])
    [
      (Scenario.Kite, Boot.kite_network);
      (Scenario.Linux, Boot.linux_driver_domain);
    ];
  Table.note t
    "restarting a failed Kite domain interrupts guest I/O ~10x more briefly";
  { exp_id = "restart"; tables = [ t ] }

(* The measured counterpart of [restart]: actually destroy the driver
   domain mid-workload and time recovery end to end.  Storage: a stream
   of sequential writes spans the crash; blkfront journals in-flight
   requests and replays them into the rebuilt backend, and a full
   read-back verifies exactly-once completion (zero lost, zero
   duplicated).  Network: a ping stream spans the crash; service resumes
   once netfront re-handshakes.  Downtime is crash instant to frontend
   reconnected, dominated by the flavor's boot profile. *)
let restart_recovery ~quick =
  let module Flight = Kite_flight.Flight in
  let module Slo = Kite_flight.Slo in
  (* The incident snapshot is part of this experiment's contract, so when
     the CLI armed no observability sinks we install private ones — a
     flight recorder per machine, plus the fault log (whose toolstack
     notes land in the timeline) and a metrics registry (for the delta
     and the SLO histogram) — and restore the ambient state afterwards,
     like [hypercalls] does for tracing. *)
  let saved_flight = Flight.default () in
  let saved_fault = Kite_fault.Fault.default () in
  let saved_metrics = Kite_metrics.Registry.default () in
  (match saved_flight with
  | None -> Flight.set_default (Some (Flight.sink ()))
  | Some _ -> ());
  (match saved_fault with
  | None -> Kite_fault.Fault.set_default (Some (Kite_fault.Fault.sink ~seed:23 []))
  | Some _ -> ());
  (match saved_metrics with
  | None -> Kite_metrics.Registry.set_default (Some (Kite_metrics.Registry.sink ()))
  | Some _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Flight.set_default saved_flight;
      Kite_fault.Fault.set_default saved_fault;
      Kite_metrics.Registry.set_default saved_metrics)
  @@ fun () ->
  let flights = ref [] in
  (* Seal at row end so the rendered snapshot carries its metrics delta
     and SLO verdicts; the scenario teardown's later seal is a no-op. *)
  let note_flight = function
    | Some fl ->
        Flight.seal_all fl;
        flights := fl :: !flights
    | None -> ()
  in
  let blk_row flavor =
    let s = Scenario.storage ~flavor () in
    let writes = if quick then 96 else 256 in
    let span = 64 (* sectors per write *) in
    let downtime = ref None in
    let done_ = ref None in
    let verify_errors = ref 0 in
    Scenario.when_blk_ready s (fun () ->
        (* Back-to-back writes keep requests in flight, so the crash
           lands on a non-empty journal and forces a replay. *)
        Scenario.crash_and_restart_blk s ~flavor ~at:(Time.ms 2)
          ~on_restored:(fun ~downtime:d -> downtime := Some d)
          ();
        let front = s.Scenario.blkfront in
        let fill k =
          Char.chr (Char.code 'a' + (k mod 26))
        in
        for k = 0 to writes - 1 do
          let data =
            Bytes.make (span * Kite_drivers.Blkfront.sector_size) (fill k)
          in
          Kite_drivers.Blkfront.write front ~sector:(k * span) data
        done;
        for k = 0 to writes - 1 do
          let data =
            Kite_drivers.Blkfront.read front ~sector:(k * span) ~count:span
          in
          Bytes.iter
            (fun c -> if c <> fill k then incr verify_errors)
            data
        done;
        done_ := Some ());
    drive s.Scenario.bhv done_ "restart-recovery storage";
    note_flight s.Scenario.blk_flight;
    let dt = match !downtime with Some d -> d | None -> 0 in
    [
      Scenario.flavor_name flavor;
      Time.to_string dt;
      fint writes;
      fint (Kite_drivers.Blkfront.replayed s.Scenario.blkfront);
      fint !verify_errors;
    ]
  in
  let net_row flavor =
    let s = Scenario.network ~flavor () in
    let downtime = ref None in
    let done_ = ref None in
    let sent = ref 0 and received = ref 0 and after_ok = ref 0 in
    (* Ping RTTs feed a histogram so the blackout shows up as an
       SLO-annotated p99 spike: a timed-out ping is observed at the
       timeout value (the client-visible floor of its latency). *)
    let rtt_h =
      match s.Scenario.net_metrics with
      | Some reg ->
          let h =
            Kite_metrics.Registry.histogram reg
              ~help:"client ping RTT (ns); timeouts observed at the timeout"
              ~base:1000. ~factor:2. "kite_ping_rtt_ns" []
          in
          (match s.Scenario.net_flight with
          | Some fl ->
              Flight.add_slo fl
                (Slo.create ~name:"ping-rtt-p99" ~metric:"kite_ping_rtt_ns"
                   ~quantile:0.99
                   ~threshold:(float_of_int (Time.ms 5))
                   reg)
          | None -> ());
          Some h
      | None -> None
    in
    let observe_rtt ns =
      match rtt_h with
      | Some h -> Kite_metrics.Registry.observe h (float_of_int ns)
      | None -> ()
    in
    Scenario.when_net_ready s (fun () ->
        Scenario.crash_and_restart_net s ~flavor ~at:(Time.ms 10)
          ~on_restored:(fun ~downtime:d -> downtime := Some d)
          ();
        (* Ping through the outage until the backend is back, then
           confirm the data path with a post-restart burst. *)
        let rec until_restored seq =
          if !downtime = None then begin
            incr sent;
            (match
               Kite_net.Stack.ping s.Scenario.client_stack
                 ~dst:s.Scenario.guest_ip ~timeout:(Time.ms 20) ~seq ()
             with
            | Some rtt ->
                incr received;
                observe_rtt rtt
            | None -> observe_rtt (Time.ms 20));
            Process.sleep (Time.ms 5);
            until_restored (seq + 1)
          end
          else seq
        in
        let seq = until_restored 0 in
        for k = 0 to 9 do
          incr sent;
          match
            Kite_net.Stack.ping s.Scenario.client_stack
              ~dst:s.Scenario.guest_ip ~timeout:(Time.ms 100) ~seq:(seq + k)
              ()
          with
          | Some rtt ->
              incr received;
              incr after_ok;
              observe_rtt rtt
          | None -> observe_rtt (Time.ms 100)
        done;
        done_ := Some ());
    drive s.Scenario.hv done_ "restart-recovery network";
    note_flight s.Scenario.net_flight;
    let dt = match !downtime with Some d -> d | None -> 0 in
    [
      Scenario.flavor_name flavor;
      Time.to_string dt;
      fint !sent;
      fint (!sent - !received);
      Printf.sprintf "%d/10" !after_ok;
    ]
  in
  let tblk =
    Table.create
      ~title:"Extension: storage crash/restart recovery (measured)"
      ~columns:
        [ ("flavor", Table.Left); ("downtime", Table.Right);
          ("writes", Table.Right); ("replayed", Table.Right);
          ("verify errors", Table.Right) ]
  in
  Table.add_row tblk (blk_row Scenario.Kite);
  Table.add_row tblk (blk_row Scenario.Linux);
  Table.note tblk
    "writes block across the crash, journal replays in-flight requests: \
     zero lost, zero duplicated";
  let tnet =
    Table.create
      ~title:"Extension: network crash/restart recovery (measured)"
      ~columns:
        [ ("flavor", Table.Left); ("downtime", Table.Right);
          ("pings", Table.Right); ("lost", Table.Right);
          ("after restart", Table.Right) ]
  in
  Table.add_row tnet (net_row Scenario.Kite);
  Table.add_row tnet (net_row Scenario.Linux);
  Table.note tnet
    "pings are lost while the domain reboots; Tx/Rx resume on reconnect \
     (Kite downtime ~10-100x below Linux)";
  (* The flight recorders' view of the same runs: every crash froze an
     incident snapshot; render them after the headline tables. *)
  let fls = List.rev !flights in
  let incident_tables =
    List.concat_map
      (fun fl ->
        List.concat_map
          (fun inc ->
            Flight_report.incident_tables
              ~last:(if quick then 12 else 30)
              fl inc)
          (Flight.incidents fl))
      fls
  in
  let flight_tables =
    match fls with
    | [] -> []
    | _ ->
        Flight_report.summary_table fls :: Flight_report.slo_table fls
        :: incident_tables
  in
  { exp_id = "restart-recovery"; tables = [ tblk; tnet ] @ flight_tables }

(* §3.1's scaling claim: one Kite domain with multiple vCPUs can serve
   several NICs.  Two guests behind two passthrough NICs, one bridge
   each; aggregate UDP throughput approaches 2x a single NIC. *)
let scale ~quick =
  let duration = if quick then Time.ms 20 else Time.ms 100 in
  let run nnics =
    let hv = Kite_xen.Hypervisor.create ~seed:77 () in
    let ctx = Kite_drivers.Xen_ctx.create hv in
    let sched = Kite_xen.Hypervisor.sched hv in
    let metrics = Kite_xen.Hypervisor.metrics hv in
    let dd =
      Kite_xen.Hypervisor.create_domain hv ~name:"netdd"
        ~kind:Kite_xen.Domain.Driver_domain ~vcpus:nnics ~mem_mb:1024
    in
    let links =
      List.init nnics (fun i ->
          let srv =
            Kite_devices.Nic.create sched metrics
              ~name:(Printf.sprintf "srv%d" i) ~queue_limit:8192 ()
          in
          let cli =
            Kite_devices.Nic.create sched metrics
              ~name:(Printf.sprintf "cli%d" i) ~queue_limit:8192 ()
          in
          Kite_devices.Nic.connect srv cli ~propagation:(Time.ns 500);
          (srv, cli))
    in
    ignore
      (Kite_drivers.Net_app.run_multi ctx ~domain:dd
         ~nics:(List.map fst links)
         ~overheads:Kite_drivers.Overheads.kite ());
    let received = ref 0 in
    (* Must match the datagram size nuttcp actually sends. *)
    let payload = 8192 in
    List.iteri
      (fun i (_, client_nic) ->
        let domu =
          Kite_xen.Hypervisor.create_domain hv
            ~name:(Printf.sprintf "domu%d" i) ~kind:Kite_xen.Domain.Dom_u
            ~vcpus:4 ~mem_mb:2048
        in
        (* VIF placement is (frontend id + devid) mod nnics; guests are
           created in order, so give each the devid that lands it on its
           own NIC's bridge. *)
        let devid = (nnics - (domu.Kite_xen.Domain.id mod nnics) + i) mod nnics in
        Kite_drivers.Toolstack.add_vif ctx ~backend:dd ~frontend:domu ~devid ();
        let front =
          Kite_drivers.Netfront.create ctx ~domain:domu ~backend:dd ~devid ()
        in
        let subnet = Printf.sprintf "10.%d.0" i in
        let guest_ip = Kite_net.Ipv4addr.of_string (subnet ^ ".2") in
        let guest =
          Kite_net.Stack.create sched
            ~name:(Printf.sprintf "guest%d" i)
            ~dev:(Kite_drivers.Netfront.netdev front)
            ~mac:(Kite_net.Macaddr.make_local (100 + i))
            ~ip:guest_ip
            ~netmask:(Kite_net.Ipv4addr.of_string "255.255.255.0")
            ~rx_cost:(Time.ns 1500) ()
        in
        let client =
          Kite_net.Stack.create sched
            ~name:(Printf.sprintf "client%d" i)
            ~dev:(Kite_drivers.Netif.of_nic client_nic)
            ~mac:(Kite_net.Macaddr.make_local (200 + i))
            ~ip:(Kite_net.Ipv4addr.of_string (subnet ^ ".9"))
            ~netmask:(Kite_net.Ipv4addr.of_string "255.255.255.0")
            ~rx_cost:(Time.us 1) ()
        in
        Process.spawn sched ~name:(Printf.sprintf "load%d" i) (fun () ->
            Kite_drivers.Netfront.wait_connected front;
            Process.sleep (Time.ms 5);
            BT.Nuttcp.run ~sched ~client ~server:guest ~server_ip:guest_ip
              ~port:(5001 + (10 * i))
              ~duration
              ~on_done:(fun r ->
                received := !received + r.BT.Nuttcp.received)
              ()))
      links;
    Kite_xen.Hypervisor.run_for hv (Time.sec 10);
    float_of_int (!received * payload * 8) /. Time.to_sec_f duration /. 1e9
  in
  let one = run 1 in
  let two = run 2 in
  let t =
    Table.create ~title:"Extension: multi-NIC scaling (one Kite domain)"
      ~columns:
        [ ("configuration", Table.Left); ("aggregate UDP (Gbps)", Table.Right) ]
  in
  Table.add_rows t
    [
      [ "1 NIC, 1 vCPU"; fnum one ];
      [ "2 NICs, 2 vCPUs"; fnum two ];
    ];
  Table.note t
    (Printf.sprintf
       "scaling factor %.2fx — §3.1: \"several NICs for better I/O scaling\""
       (two /. one));
  { exp_id = "scale"; tables = [ t ] }

(* The paper's abstract claim that unikernel service VMs "reduce memory
   overheads": assignment and steady-state working set per domain, and
   what that adds up to on an enterprise host with many devices (§1). *)
let memory ~quick:_ =
  let t =
    Table.create ~title:"Extension: service-VM memory footprint"
      ~columns:
        [ ("domain", Table.Left); ("assigned (MB)", Table.Right);
          ("resident (MB)", Table.Right); ("image (MB)", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.Os_profile.profile_name;
          fint p.Os_profile.assigned_mem_mb;
          fint p.Os_profile.resident_mem_mb;
          fnum (Image.total_mb p.Os_profile.image);
        ])
    Os_profile.all;
  let kite = Os_profile.get Os_profile.Kite_network in
  let linux = Os_profile.get Os_profile.Linux_network in
  Table.note t
    (Printf.sprintf
       "a bare-metal host with 8 devices saves %d MB of assignment (%d MB \
        resident) by using Kite domains"
       (8 * (linux.Os_profile.assigned_mem_mb - kite.Os_profile.assigned_mem_mb))
       (8 * (linux.Os_profile.resident_mem_mb - kite.Os_profile.resident_mem_mb)));
  { exp_id = "memory"; tables = [ t ] }

(* xentrace-style accounting: which hypercalls a driver domain issues
   under a fixed workload, Kite vs Linux — the per-operation costs §4.2
   reasons about, measured rather than asserted.  Implemented on the
   kite_trace hypercall profile: a private sink traces both testbeds
   (saving and restoring any sink an enclosing [kite_ctl trace] set). *)
let hypercalls ~quick =
  let pings = if quick then 5 else 20 in
  let module Trace = Kite_trace.Trace in
  let saved = Trace.default () in
  let sink = Trace.sink () in
  Trace.set_default (Some sink);
  let run flavor =
    let s = Scenario.network ~flavor () in
    let done_ = ref None in
    Scenario.when_net_ready s (fun () ->
        for seq = 1 to pings do
          ignore
            (Kite_net.Stack.ping s.Scenario.client_stack
               ~dst:s.Scenario.guest_ip ~seq ())
        done;
        done_ := Some ());
    ignore (drive s.Scenario.hv done_ "hypercalls");
    s.Scenario.dd.Kite_xen.Domain.name
  in
  let kdd, ldd =
    Fun.protect
      ~finally:(fun () -> Trace.set_default saved)
      (fun () ->
        let kdd = run Scenario.Kite in
        let ldd = run Scenario.Linux in
        (kdd, ldd))
  in
  (* Per-driver-domain operation counts out of the exact trace profile. *)
  let counts dd =
    List.filter_map
      (fun (_machine, domain, op, count, _total) ->
        if domain = dd then Some (op, count) else None)
      (Trace.hypercall_profile (Trace.traces sink))
  in
  let kc = counts kdd and lc = counts ldd in
  let ops =
    List.sort_uniq String.compare (List.map fst kc @ List.map fst lc)
  in
  let get c op = Option.value ~default:0 (List.assoc_opt op c) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: driver-domain hypercalls for %d pings (xentrace-style)"
           pings)
      ~columns:
        [ ("operation", Table.Left); ("Linux DD", Table.Right);
          ("Kite DD", Table.Right) ]
  in
  List.iter
    (fun op -> Table.add_row t [ op; fint (get lc op); fint (get kc op) ])
    ops;
  let total c = List.fold_left (fun acc (_, n) -> acc + n) 0 c in
  Table.add_row t [ "TOTAL"; fint (total lc); fint (total kc) ];
  Table.add_row t
    [
      "per ping";
      fnum (float_of_int (total lc) /. float_of_int pings);
      fnum (float_of_int (total kc) /. float_of_int pings);
    ];
  Table.note t
    "protocol hypercalls are identical per packet; the gap is the Linux \
     kernel backend's per-packet grant bookkeeping (grant_op.kernel, \
     traced at zero cost -- its CPU time is inside the calibrated \
     per-packet figures)";
  { exp_id = "hypercalls"; tables = [ t ] }

(* Multi-queue dataplane scaling: one guest, one NIC, [nq] negotiated
   Tx/Rx ring pairs, and a driver domain with [nq] vCPUs so the
   per-queue pusher threads genuinely overlap.  One producer per queue
   in the guest blasts frames whose flow hash lands on its queue; the
   NIC is modelled at 100 Gbps so the wire is not what saturates — the
   measured ceiling is the driver domain's per-packet CPU work, which
   is what extra queues parallelize. *)
let mq_run ~duration ~mq nq =
  let hv = Kite_xen.Hypervisor.create ~seed:910 () in
  let ctx = Kite_drivers.Xen_ctx.create hv in
  (* Hand-built testbed, so consult the run-wide sinks explicitly: the
     flight-overhead bench gate arms a recorder on exactly this
     workload.  No-op when nothing is armed. *)
  Scenario.arm_ambient ctx "mq-";
  let sched = Kite_xen.Hypervisor.sched hv in
  let metrics = Kite_xen.Hypervisor.metrics hv in
  let dd =
    Kite_xen.Hypervisor.create_domain hv ~name:"netdd"
      ~kind:Kite_xen.Domain.Driver_domain ~vcpus:nq ~mem_mb:1024
  in
  let domu =
    Kite_xen.Hypervisor.create_domain hv ~name:"domu"
      ~kind:Kite_xen.Domain.Dom_u ~vcpus:(2 * nq) ~mem_mb:2048
  in
  let srv =
    Kite_devices.Nic.create sched metrics ~name:"eth-srv"
      ~line_rate_gbps:100.0 ~queue_limit:65536 ()
  in
  let cli =
    Kite_devices.Nic.create sched metrics ~name:"eth-cli"
      ~line_rate_gbps:100.0 ~queue_limit:65536 ()
  in
  Kite_devices.Nic.connect srv cli ~propagation:(Time.ns 500);
  ignore
    (Kite_drivers.Net_app.run ctx ~domain:dd ~nic:srv
       ~overheads:Kite_drivers.Overheads.kite ());
  let queues = if mq then Some nq else None in
  Kite_drivers.Toolstack.add_vif ctx ~backend:dd ~frontend:domu ~devid:0
    ?queues ();
  let front =
    Kite_drivers.Netfront.create ctx ~domain:domu ~backend:dd ~devid:0
      ?num_queues:queues ()
  in
  let dev = Kite_drivers.Netfront.netdev front in
  Kite_net.Netdev.set_up dev true;
  let frame_len = 1500 in
  (* Broadcast destination (the bridge floods it out the physical NIC);
     byte 6 is brute-forced through the steering hash so producer [q]'s
     flow lands on queue [q]. *)
  let frame_for q =
    let f = Bytes.make frame_len '\000' in
    Bytes.fill f 0 6 '\xff';
    let b = ref 0 in
    Bytes.set f 6 (Char.chr !b);
    while
      Kite_drivers.Netchannel.flow_hash f (max 1 nq) <> q && !b < 0xff
    do
      incr b;
      Bytes.set f 6 (Char.chr !b)
    done;
    f
  in
  let stop = ref false in
  let result = ref None in
  Kite_xen.Hypervisor.spawn hv domu ~name:"mq-load" (fun () ->
      Kite_drivers.Netfront.wait_connected front;
      for q = 0 to nq - 1 do
        let frame = frame_for q in
        Kite_xen.Hypervisor.spawn hv domu
          ~name:(Printf.sprintf "blast%d" q)
          (fun () ->
            while not !stop do
              Kite_net.Netdev.transmit dev frame
            done)
      done;
      Process.sleep (Time.ms 2);
      let rx0 = Kite_devices.Nic.rx_bytes cli in
      let t0 = Kite_xen.Hypervisor.now hv in
      Process.sleep duration;
      stop := true;
      let bytes = Kite_devices.Nic.rx_bytes cli - rx0 in
      let dt = Kite_xen.Hypervisor.now hv - t0 in
      result :=
        Some (float_of_int (bytes * 8) /. Time.to_sec_f dt /. 1e9));
  Kite_xen.Hypervisor.run_for hv (Time.sec 10);
  match !result with
  | Some gbps -> gbps
  | None -> failwith "mq_run: measurement window never completed"

let mq_run_gbps ~duration ~mq nq = mq_run ~duration ~mq nq

let mq_scale ~quick =
  let duration = if quick then Time.ms 3 else Time.ms 20 in
  let sweep = [ 1; 2; 4; 8 ] in
  let results = List.map (fun nq -> (nq, mq_run ~duration ~mq:true nq)) sweep in
  let one = List.assoc 1 results in
  let t =
    Table.create ~title:"Extension: multi-queue dataplane scaling (net Tx)"
      ~columns:
        [
          ("queues", Table.Right); ("aggregate Tx (Gbps)", Table.Right);
          ("vs 1 queue", Table.Right);
        ]
  in
  List.iter
    (fun (nq, gbps) ->
      Table.add_row t
        [ fint nq; fnum gbps; Printf.sprintf "%.2fx" (gbps /. one) ])
    results;
  Table.note t
    "per-queue rings + per-queue pusher threads on a matching vCPU count; \
     grant-copy hypercalls batched per drained run";
  { exp_id = "mq-scale"; tables = [ t ] }

(* The mq machinery must be free when unused: one negotiated queue
   through the multi-queue paths vs the legacy flat single-ring layout,
   identical workload.  Returns (legacy Gbps, 1-queue mq Gbps); the
   bench gate asserts mq is within 1.1x. *)
let mq_overhead ~quick =
  let duration = if quick then Time.ms 3 else Time.ms 20 in
  let legacy = mq_run ~duration ~mq:false 1 in
  let mq1 = mq_run ~duration ~mq:true 1 in
  (legacy, mq1)

(* Critical-path attribution (lib/path): where does a request's
   simulated time go, and at what offered load does queueing overtake
   service?  Phase 1 drives a moderate open-loop load through both
   testbeds and renders the per-stage waterfall, checking the partition
   invariant — per-stage totals sum to the end-to-end time within 1%.
   Phase 2 measures the storage path's sustainable capacity closed-loop,
   then sweeps open-loop offered rate across it: below the knee the
   request's time is service, past it the accumulated queueing time
   takes over. *)
let latency_waterfall ~quick =
  let module Path = Kite_path.Path in
  (* The waterfall is the experiment's contract: arm private trace +
     path sinks when the CLI armed none, restore the ambient state
     afterwards (the restart-recovery / hypercalls pattern). *)
  let saved_trace = Kite_trace.Trace.default () in
  let saved_path = Path.default () in
  (match saved_trace with
  | None -> Kite_trace.Trace.set_default (Some (Kite_trace.Trace.sink ()))
  | Some _ -> ());
  (match saved_path with
  | None -> Path.set_default (Some (Path.sink ()))
  | Some _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Kite_trace.Trace.set_default saved_trace;
      Path.set_default saved_path)
  @@ fun () ->
  let engine_of ctx =
    match ctx.Kite_drivers.Xen_ctx.path with
    | Some p -> p
    | None -> failwith "latency-waterfall: no path engine attached"
  in
  let blk_data seq =
    Bytes.make
      (8 * Kite_drivers.Blkfront.sector_size)
      (Char.chr (Char.code 'a' + (seq mod 26)))
  in
  (* -- phase 1: the waterfall under moderate open-loop load ---------- *)
  let net_n = if quick then 200 else 1000 in
  let net_rate = 50_000. (* req/s, well under the Tx path's capacity *) in
  let net_path =
    let s = Scenario.network ~flavor:Scenario.Kite () in
    let p = engine_of s.Scenario.ctx in
    let done_ = ref None in
    Scenario.when_net_ready s (fun () ->
        let dev = Kite_drivers.Netfront.netdev s.Scenario.netfront in
        let frame = Bytes.make 1500 '\000' in
        Bytes.fill frame 0 6 '\xff';
        Kite_bench_tools.Openloop.run ~sched:s.Scenario.sched ~rate:net_rate
          ~burst:8
          ~burst_every:(Time.ms 1)
          ~duration:(Time.of_sec_f (float_of_int net_n /. net_rate))
          ~fire:(fun _ ->
            Kite_net.Netdev.transmit dev frame;
            true)
          ~on_done:(fun r -> done_ := Some r)
          ());
    ignore (drive s.Scenario.hv done_ "latency-waterfall net");
    p
  in
  let blk_n = if quick then 150 else 600 in
  let blk_rate = 5_000. in
  let blk_path =
    let s = Scenario.storage ~flavor:Scenario.Kite () in
    let p = engine_of s.Scenario.bctx in
    let done_ = ref None in
    Scenario.when_blk_ready s (fun () ->
        let front = s.Scenario.blkfront in
        Kite_bench_tools.Openloop.run ~sched:s.Scenario.bsched ~rate:blk_rate
          ~duration:(Time.of_sec_f (float_of_int blk_n /. blk_rate))
          ~fire:(fun seq ->
            Kite_drivers.Blkfront.write front
              ~sector:(8 * (seq mod 1024))
              (blk_data seq);
            true)
          ~on_done:(fun r -> done_ := Some r)
          ());
    ignore (drive s.Scenario.bhv done_ "latency-waterfall blk");
    p
  in
  let engines = [ net_path; blk_path ] in
  (* The acceptance check rendered as data: stages partition each span,
     so the per-stage totals must reproduce the end-to-end total. *)
  let partition =
    Table.create ~title:"Partition invariant: stages sum to end-to-end"
      ~columns:
        [
          ("machine", Table.Left);
          ("kind", Table.Left);
          ("spans", Table.Right);
          ("stage sum ms", Table.Right);
          ("end-to-end ms", Table.Right);
          ("delta", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      let stats = Path.stage_stats p in
      let kinds =
        List.fold_left
          (fun acc s ->
            if List.mem s.Path.st_kind acc then acc
            else acc @ [ s.Path.st_kind ])
          [] stats
      in
      List.iter
        (fun kind ->
          let stage_sum =
            List.fold_left
              (fun acc s ->
                if s.Path.st_kind = kind then acc + s.Path.st_total_ns
                else acc)
              0 stats
          in
          let e2e = Path.span_total_ns p ~kind in
          let delta =
            Float.abs (float_of_int (stage_sum - e2e))
            /. float_of_int (max 1 e2e)
          in
          if delta > 0.01 then
            failwith
              (Printf.sprintf
                 "latency-waterfall: %s/%s stage sum %d ns vs end-to-end %d \
                  ns (%.2f%% apart)"
                 (Path.name p) kind stage_sum e2e (100. *. delta));
          Table.add_row partition
            [
              Path.name p;
              kind;
              fint (Path.span_count p ~kind);
              Table.fmt_f (float_of_int stage_sum /. 1e6);
              Table.fmt_f (float_of_int e2e /. 1e6);
              Table.fmt_pct (100. *. delta);
            ])
        kinds)
    engines;
  Table.note partition "the runner fails if any kind drifts past 1%";
  (* -- phase 2: offered-rate sweep on the storage path --------------- *)
  (* Sustainable capacity first, measured closed-loop: a few workers
     writing back-to-back; completions per second is the service rate
     the open-loop sweep is calibrated against. *)
  let capacity =
    let s = Scenario.storage ~flavor:Scenario.Kite () in
    let hv = s.Scenario.bhv in
    let done_ = ref None in
    Scenario.when_blk_ready s (fun () ->
        let front = s.Scenario.blkfront in
        let window = if quick then Time.ms 2 else Time.ms 10 in
        let workers = 8 in
        let stop = ref false in
        let completed = ref 0 in
        let live = ref workers in
        let t0 = Kite_xen.Hypervisor.now hv in
        for w = 0 to workers - 1 do
          Kite_xen.Hypervisor.spawn hv s.Scenario.bdomu ~name:"cap-worker"
            (fun () ->
              while not !stop do
                Kite_drivers.Blkfront.write front
                  ~sector:(8 * ((w * 128) + (!completed mod 128)))
                  (blk_data !completed);
                incr completed
              done;
              decr live;
              if !live = 0 then
                done_ :=
                  Some
                    (float_of_int !completed
                    /. Time.to_sec_f (Kite_xen.Hypervisor.now hv - t0)))
        done;
        Kite_xen.Hypervisor.spawn hv s.Scenario.bdomu ~name:"cap-stop"
          (fun () ->
            Process.sleep window;
            stop := true));
    drive hv done_ "latency-waterfall capacity"
  in
  let sat_n = if quick then 150 else 500 in
  let step multiple =
    let rate = multiple *. capacity in
    let s = Scenario.storage ~flavor:Scenario.Kite () in
    let hv = s.Scenario.bhv in
    let p = engine_of s.Scenario.bctx in
    let lats = ref [] in
    let done_ = ref None in
    Scenario.when_blk_ready s (fun () ->
        let front = s.Scenario.blkfront in
        Kite_bench_tools.Openloop.run ~sched:s.Scenario.bsched ~rate
          ~duration:(Time.of_sec_f (float_of_int sat_n /. rate))
          ~fire:(fun seq ->
            let t0 = Kite_xen.Hypervisor.now hv in
            Kite_drivers.Blkfront.write front
              ~sector:(8 * (seq mod 1024))
              (blk_data seq);
            lats := Time.to_ms_f (Kite_xen.Hypervisor.now hv - t0) :: !lats;
            true)
          ~on_done:(fun r -> done_ := Some r)
          ());
    let r = drive hv done_ "latency-waterfall saturation step" in
    {
      Path_report.sat_rate = rate;
      sat_offered = r.Kite_bench_tools.Openloop.offered;
      sat_completed = r.Kite_bench_tools.Openloop.completed;
      sat_p99_ms = Summary.percentile !lats 99.;
      sat_queue_ms =
        float_of_int (Path.class_total_ns p ~kind:"blk" Path.Queueing) /. 1e6;
      sat_service_ms =
        float_of_int (Path.class_total_ns p ~kind:"blk" Path.Service) /. 1e6;
    }
  in
  let rows = List.map step [ 0.3; 0.8; 1.5; 3.0; 6.0 ] in
  (* The acceptance check for the knee: queueing must overtake service
     somewhere in the sweep, and must not dominate at the lowest rate. *)
  let queue_bound r =
    r.Path_report.sat_queue_ms > r.Path_report.sat_service_ms
  in
  (match rows with
  | first :: _ ->
      if queue_bound first then
        failwith
          "latency-waterfall: queueing already dominates at 0.3x capacity";
      if not (List.exists queue_bound rows) then
        failwith
          "latency-waterfall: no saturation knee up to 6x measured capacity"
  | [] -> assert false);
  {
    exp_id = "latency-waterfall";
    tables =
      [
        Path_report.waterfall_table engines;
        partition;
        Path_report.devices_table engines;
        Path_report.cpu_table engines;
        Path_report.saturation_table ~kind:"blk" rows;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Swarm: open-loop client populations with SLO-gated overload         *)
(* ------------------------------------------------------------------ *)

module Swarm = Kite_swarm.Swarm
module Swarm_profile = Kite_swarm.Profile
module Oracle = Kite_swarm.Oracle

(* Start the app's server in the guest and hand back a session factory
   the swarm driver calls once per arriving client.  Sessions are
   numbered so key / row spaces spread across the population. *)
let swarm_sessions (s : Scenario.net) app =
  let sched = s.Scenario.sched in
  let tcp = s.Scenario.guest_tcp in
  let dst = s.Scenario.guest_ip in
  let client = s.Scenario.client_tcp in
  let seq = ref 0 in
  match app with
  | "httpd" ->
      ignore (Kite_apps.Httpd.start tcp ~sched ());
      fun () -> Kite_apps.Clients.httpd client ~dst ()
  | "kvstore" ->
      ignore (Kite_apps.Kvstore.start tcp ~sched ());
      fun () ->
        incr seq;
        Kite_apps.Clients.kvstore client ~dst
          ~key:(Printf.sprintf "sw%d" (!seq mod 4096))
          ()
  | "memcache" ->
      ignore (Kite_apps.Memcache.start tcp ~sched ());
      fun () ->
        incr seq;
        Kite_apps.Clients.memcache client ~dst
          ~key:(Printf.sprintf "sw%d" (!seq mod 4096))
          ()
  | "sqldb" ->
      ignore
        (Kite_apps.Sqldb.start tcp ~backend:Kite_apps.Sqldb.Memory ~tables:4
           ~rows_per_table:2048 ~sched ());
      fun () ->
        incr seq;
        Kite_apps.Clients.sqldb client ~dst ~table:(!seq mod 4)
          ~row:(!seq * 37) ()
  | other ->
      failwith
        (Printf.sprintf "swarm: unknown app %S (have httpd,kvstore,memcache,sqldb)"
           other)

let swarm_driver (s : Scenario.net) app =
  let mk = swarm_sessions s app in
  {
    Swarm.d_app = app;
    d_connect =
      (fun () ->
        match mk () with
        | sess ->
            Some
              {
                Swarm.c_request =
                  (fun ~size ~slow ->
                    sess.Kite_apps.Clients.request ~size ~slow);
                c_close = sess.Kite_apps.Clients.close;
              }
        | exception _ -> None);
  }

let swarm_run ~flavor ~app ~p ~clients ?rate ~seed ?impair () =
  let s = Scenario.network ~flavor ~seed:(2022 + seed) ?impair () in
  let done_ = ref None in
  Scenario.when_net_ready s (fun () ->
      let driver = swarm_driver s app in
      Swarm.run ~sched:s.Scenario.sched ~seed ?rate ~profile:p ~clients
        ~driver
        ~on_done:(fun r -> done_ := Some r)
        ());
  drive s.Scenario.hv done_ ("swarm " ^ app)

let swarm_campaign ?(flavor = Scenario.Kite) ?(app = "httpd") ?impair
    ?(profile = "web") ?(clients = 5_000) ?rate ?(seed = 7) () =
  match Swarm_profile.find profile with
  | None ->
      invalid_arg
        (Printf.sprintf "swarm: unknown profile %S (have %s)" profile
           Swarm_profile.names)
  | Some p -> swarm_run ~flavor ~app ~p ~clients ?rate ~seed ?impair ()

(* Closed-loop capacity in requests/s: a fixed worker pool issuing
   back-to-back requests over persistent sessions for a short window —
   the service rate the open-loop sweep is calibrated against. *)
let swarm_capacity ~flavor ~app ~quick =
  let s = Scenario.network ~flavor () in
  let done_ = ref None in
  Scenario.when_net_ready s (fun () ->
      let mk = swarm_sessions s app in
      let engine = Process.engine s.Scenario.sched in
      let window = if quick then Time.ms 20 else Time.ms 100 in
      let workers = 16 in
      let stop = ref false in
      let completed = ref 0 in
      let live = ref workers in
      let t0 = Engine.now engine in
      for _ = 1 to workers do
        Process.spawn s.Scenario.sched ~name:"swarm-cap" (fun () ->
            let sess = mk () in
            while not !stop do
              if sess.Kite_apps.Clients.request ~size:2048 ~slow:false then
                incr completed
            done;
            sess.Kite_apps.Clients.close ();
            decr live;
            if !live = 0 then
              done_ :=
                Some
                  (float_of_int !completed
                  /. Time.to_sec_f (Engine.now engine - t0)))
      done;
      Process.spawn s.Scenario.sched ~name:"swarm-cap-stop" (fun () ->
          Process.sleep window;
          stop := true));
  drive s.Scenario.hv done_ ("swarm capacity " ^ app)

(* One profile for the whole sweep: modest keep-alive sessions, fixed
   sizes, no modulation — the knee must come from the backend, not the
   traffic shape. *)
let swarm_sweep_profile =
  {
    (Option.get (Swarm_profile.find "steady")) with
    Swarm_profile.sizes = Swarm_profile.Fixed 2048;
  }

let swarm_sweep ~flavor ~app ~quick ~capacity =
  let clients = if quick then 600 else 3_000 in
  let rps = swarm_sweep_profile.Swarm_profile.requests_per_session in
  let step mult =
    let session_rate = mult *. capacity /. float_of_int rps in
    let r =
      swarm_run ~flavor ~app ~p:swarm_sweep_profile ~clients
        ~rate:session_rate ~seed:11 ()
    in
    {
      Oracle.st_mult = mult;
      st_offered_rps = mult *. capacity;
      st_goodput_rps = r.Swarm.sw_goodput_rps;
      st_p99_ms = r.Swarm.sw_p99_ms;
      st_p999_ms = r.Swarm.sw_p999_ms;
      st_errors = r.Swarm.sw_errors;
    }
  in
  let steps = List.map step [ 0.5; 1.0; 1.8; 3.0 ] in
  let verdict =
    Oracle.assess ~clients_per_step:(clients * rps) ~capacity_rps:capacity
      steps
  in
  (steps, verdict)

let swarm ~quick =
  (* -- headline: a six-figure client population through Kite httpd --- *)
  let headline app clients =
    let cap = swarm_capacity ~flavor:Scenario.Kite ~app ~quick in
    (* Offer ~40% of closed-loop capacity: the SLO-met regime. *)
    let session_rate =
      0.4 *. cap
      /. float_of_int
           (Option.get (Swarm_profile.find "web")).Swarm_profile
             .requests_per_session
    in
    swarm_campaign ~app ~clients ~rate:session_rate ()
  in
  let headline_clients = if quick then 4_000 else 110_000 in
  let camp = headline "httpd" headline_clients in
  if camp.Swarm.sw_clients < headline_clients then
    failwith "swarm: headline campaign lost clients";
  (* -- overload sweeps: knee + graceful degradation, both flavors ---- *)
  let sweep_apps = [ "httpd"; "kvstore" ] in
  let sweeps =
    List.map
      (fun app ->
        let rows =
          List.map
            (fun flavor ->
              let cap = swarm_capacity ~flavor ~app ~quick in
              let steps, verdict =
                swarm_sweep ~flavor ~app ~quick ~capacity:cap
              in
              (Scenario.flavor_name flavor, flavor, steps, verdict))
            [ Scenario.Kite; Scenario.Linux ]
        in
        (* The asserted oracle: every flavor must show a knee; the Kite
           flavor must degrade gracefully past it. *)
        List.iter
          (fun (name, flavor, _, (v : Oracle.verdict)) ->
            if v.Oracle.vd_knee = None then
              failwith
                (Printf.sprintf "swarm %s/%s: no saturation knee located" app
                   name);
            if flavor = Scenario.Kite && not v.Oracle.vd_ok then
              failwith
                (Printf.sprintf "swarm %s: Kite degradation oracle violated: %s"
                   app
                   (String.concat "; " v.Oracle.vd_reasons)))
          rows;
        (app, List.map (fun (n, _, s, v) -> (n, s, v)) rows))
      sweep_apps
  in
  {
    exp_id = "swarm";
    tables =
      Swarm_report.campaign_table [ camp ]
      :: List.map (fun (app, rows) -> Swarm_report.sweep_table ~app rows)
           sweeps;
  }

let all =
  [
    ("fig1a", "Figure 1a: driver CVEs per year", fig1a);
    ("fig4a", "Figure 4a: syscall counts", fig4a);
    ("fig4b", "Figure 4b: image sizes", fig4b);
    ("fig4c", "Figure 4c: boot times", fig4c);
    ("fig5", "Figures 1b & 5: ROP gadgets", fig5);
    ("table3", "Table 3: CVEs mitigated by syscall removal", table3);
    ("fig6", "Figure 6: nuttcp throughput", fig6);
    ("fig7", "Figure 7: network latency", fig7);
    ("fig8a", "Figure 8a: Apache vs file size", fig8a);
    ("fig8b", "Figure 8b: Apache at 512 KiB", fig8b);
    ("fig9", "Figure 9: Redis throughput", fig9);
    ("fig10", "Figure 10: MySQL over the network domain", fig10);
    ("table4", "Table 4: relative standard deviations", table4);
    ("fig11", "Figure 11: dd throughput", fig11);
    ("fig12", "Figure 12: sysbench fileio", fig12);
    ("fig13", "Figure 13: MySQL over the storage domain", fig13);
    ("fig14", "Figure 14: filebench fileserver", fig14);
    ("fig15", "Figure 15: filebench MongoDB", fig15);
    ("fig16", "Figure 16: filebench webserver", fig16);
    ("dhcp", "§5.5: DHCP daemon VM", dhcp);
    ("table1", "Table 1: lines of code", table1);
    ("abl-persist", "Ablation: persistent grants", abl_persistent);
    ("abl-batch", "Ablation: request batching", abl_batching);
    ("abl-indirect", "Ablation: indirect segments", abl_indirect);
    ("abl-threads", "Ablation: threaded handlers", abl_wake);
    ("restart", "Extension: driver-domain restart recovery", restart);
    ( "restart-recovery",
      "Extension: measured crash/restart recovery",
      restart_recovery );
    ("scale", "Extension: multi-NIC scaling", scale);
    ("mq-scale", "Extension: multi-queue dataplane scaling", mq_scale);
    ("memory", "Extension: service-VM memory footprint", memory);
    ("hypercalls", "Extension: driver-domain hypercall profile", hypercalls);
    ( "latency-waterfall",
      "Extension: per-stage latency waterfall & saturation knee",
      latency_waterfall );
    ( "swarm",
      "Extension: open-loop client swarm & SLO-gated overload",
      swarm );
  ]

let find id =
  List.find_opt (fun (i, _, _) -> i = id) all
  |> Option.map (fun (_, _, f) -> f)
