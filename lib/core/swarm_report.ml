open Kite_stats
module Swarm = Kite_swarm.Swarm
module Oracle = Kite_swarm.Oracle

let f1 v = Table.fmt_f ~prec:1 v
let fms v = if Float.is_nan v then "-" else Table.fmt_f ~prec:2 v

let campaign_table rows =
  let t =
    Table.create ~title:"Swarm campaign: open-loop population per app"
      ~columns:
        [
          ("app", Table.Left);
          ("profile", Table.Left);
          ("clients", Table.Right);
          ("offered", Table.Right);
          ("completed", Table.Right);
          ("errors", Table.Right);
          ("goodput rps", Table.Right);
          ("p50 ms", Table.Right);
          ("p99 ms", Table.Right);
          ("p999 ms", Table.Right);
          ("SLO", Table.Left);
        ]
  in
  List.iter
    (fun (r : Swarm.result) ->
      let slo =
        if r.Swarm.sw_slos = [] then "-"
        else if
          List.for_all (fun e -> e.Kite_flight.Slo.ev_met) r.Swarm.sw_slos
        then "met"
        else
          String.concat ","
            (List.filter_map
               (fun e ->
                 if e.Kite_flight.Slo.ev_met then None
                 else Some (e.Kite_flight.Slo.ev_name ^ " missed"))
               r.Swarm.sw_slos)
      in
      Table.add_row t
        [
          r.Swarm.sw_app;
          r.Swarm.sw_profile;
          string_of_int r.Swarm.sw_clients;
          string_of_int r.Swarm.sw_offered;
          string_of_int r.Swarm.sw_completed;
          string_of_int r.Swarm.sw_errors;
          f1 r.Swarm.sw_goodput_rps;
          fms r.Swarm.sw_p50_ms;
          fms r.Swarm.sw_p99_ms;
          fms r.Swarm.sw_p999_ms;
          slo;
        ])
    rows;
  t

let sweep_table ~app rows =
  let t =
    Table.create
      ~title:(Printf.sprintf "Swarm overload sweep: %s" app)
      ~columns:
        [
          ("flavor", Table.Left);
          ("x capacity", Table.Right);
          ("offered rps", Table.Right);
          ("goodput rps", Table.Right);
          ("p99 ms", Table.Right);
          ("p999 ms", Table.Right);
          ("errors", Table.Right);
          ("mark", Table.Left);
        ]
  in
  List.iter
    (fun (flavor, steps, (verdict : Oracle.verdict)) ->
      List.iteri
        (fun i (s : Oracle.step) ->
          let mark =
            (if verdict.Oracle.vd_knee = Some i then "knee " else "")
            ^ if verdict.Oracle.vd_collapse = Some i then "collapse" else ""
          in
          Table.add_row t
            [
              flavor;
              f1 s.Oracle.st_mult;
              f1 s.Oracle.st_offered_rps;
              f1 s.Oracle.st_goodput_rps;
              fms s.Oracle.st_p99_ms;
              fms s.Oracle.st_p999_ms;
              string_of_int s.Oracle.st_errors;
              mark;
            ])
        steps)
    rows;
  Table.note t
    "the runner fails unless the Kite flavor degrades gracefully past its \
     knee (goodput plateau, bounded p999, zero errors); the Linux flavor is \
     recorded, not asserted";
  t
