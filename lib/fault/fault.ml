(* Deterministic fault injection.  See fault.mli for the model.

   The RNG is a private copy of lib/sim/rng.ml's splitmix64 rather than a
   dependency on kite_sim: the fault layer must sit below the simulator so
   that Xenstore / Event_channel / the device models (all of which are
   created before, or independently of, any engine) can hold one. *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
    in
    Int64.(logxor z (shift_right_logical z 31))

  let create seed = { state = mix (Int64.of_int seed) }

  let bits64 t =
    t.state <- Int64.add t.state golden;
    mix t.state

  let float t x =
    let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    x *. (r /. 9007199254740992.0 (* 2^53 *))
end

(* ------------------------------------------------------------------ *)
(* Points and plans                                                    *)
(* ------------------------------------------------------------------ *)

type point =
  | Evtchn_notify
  | Xenstore_write
  | Xenstore_watch
  | Ring_slot
  | Device_io

let point_name = function
  | Evtchn_notify -> "evtchn-notify"
  | Xenstore_write -> "xenstore-write"
  | Xenstore_watch -> "xenstore-watch"
  | Ring_slot -> "ring-slot"
  | Device_io -> "device-io"

let point_of_name = function
  | "evtchn-notify" -> Some Evtchn_notify
  | "xenstore-write" -> Some Xenstore_write
  | "xenstore-watch" -> Some Xenstore_watch
  | "ring-slot" -> Some Ring_slot
  | "device-io" -> Some Device_io
  | _ -> None

type spec = {
  sp_point : point;
  sp_key : string;
  sp_first : int;
  sp_every : int;
  sp_count : int;
  sp_prob : float;
}

let spec ?(key = "") ?(first = 1) ?(every = 1) ?(count = max_int) ?(prob = 0.)
    point =
  if first < 1 then invalid_arg "Fault.spec: first must be >= 1";
  if every < 1 then invalid_arg "Fault.spec: every must be >= 1";
  if count < 0 then invalid_arg "Fault.spec: count must be >= 0";
  if prob < 0. || prob > 1. then
    invalid_arg "Fault.spec: prob must be in [0,1]";
  { sp_point = point; sp_key = key; sp_first = first; sp_every = every;
    sp_count = count; sp_prob = prob }

type plan = spec list

let default_plan = [ spec ~first:10 ~every:40 ~count:8 Device_io ]

let spec_to_string s =
  let b = Buffer.create 48 in
  Buffer.add_string b (point_name s.sp_point);
  if s.sp_key <> "" then Buffer.add_string b (" key=" ^ s.sp_key);
  if s.sp_first <> 1 then
    Buffer.add_string b (Printf.sprintf " first=%d" s.sp_first);
  if s.sp_every <> 1 then
    Buffer.add_string b (Printf.sprintf " every=%d" s.sp_every);
  if s.sp_count <> max_int then
    Buffer.add_string b (Printf.sprintf " count=%d" s.sp_count);
  if s.sp_prob <> 0. then
    Buffer.add_string b (Printf.sprintf " prob=%g" s.sp_prob);
  Buffer.contents b

let plan_to_string plan = String.concat "\n" (List.map spec_to_string plan)

let spec_of_line line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | pt :: fields -> (
      match point_of_name pt with
      | None -> Error (Printf.sprintf "unknown injection point %S" pt)
      | Some point -> (
          let parse acc field =
            match acc with
            | Error _ -> acc
            | Ok s -> (
                match String.index_opt field '=' with
                | None -> Error (Printf.sprintf "malformed field %S" field)
                | Some i -> (
                    let k = String.sub field 0 i in
                    let v =
                      String.sub field (i + 1) (String.length field - i - 1)
                    in
                    let int_v f =
                      match int_of_string_opt v with
                      | Some n -> Ok (f n)
                      | None ->
                          Error (Printf.sprintf "bad integer %S for %s" v k)
                    in
                    match k with
                    | "key" -> Ok { s with sp_key = v }
                    | "first" -> int_v (fun n -> { s with sp_first = n })
                    | "every" -> int_v (fun n -> { s with sp_every = n })
                    | "count" -> int_v (fun n -> { s with sp_count = n })
                    | "prob" -> (
                        match float_of_string_opt v with
                        | Some p -> Ok { s with sp_prob = p }
                        | None ->
                            Error (Printf.sprintf "bad float %S for prob" v))
                    | _ -> Error (Printf.sprintf "unknown field %S" k)))
          in
          match List.fold_left parse (Ok (spec point)) fields with
          | Ok s -> Ok (Some s)
          | Error e -> Error e))

let plan_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match spec_of_line (String.trim line) with
        | Ok None -> go (n + 1) acc rest
        | Ok (Some s) -> go (n + 1) (s :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Injectors                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-spec counters live in the injector, so a plan value can be shared
   between sinks and runs without aliasing state. *)
type armed = { sp : spec; mutable seen : int; mutable fired : int }

type event =
  | Injected of point * string * int  (* point, key, eligible-op index *)
  | Noted of string * string  (* what, key *)

type t = {
  f_name : string;
  f_seed : int;
  f_plan : plan;
  armed : armed list;
  rng : Rng.t;
  mutable log : event list;  (* reversed *)
  mutable n_injected : int;
  (* Event observer (the flight recorder's tap); [None] keeps the log
     append the only work fire/note do. *)
  mutable obs : (event -> unit) option;
}

let create ?(name = "fault") ~seed plan =
  {
    f_name = name;
    f_seed = seed;
    f_plan = plan;
    armed = List.map (fun sp -> { sp; seen = 0; fired = 0 }) plan;
    rng = Rng.create seed;
    log = [];
    n_injected = 0;
    obs = None;
  }

let name t = t.f_name
let seed t = t.f_seed
let plan t = t.f_plan

let key_matches ~pat key =
  pat = ""
  ||
  (* substring match *)
  let pl = String.length pat and kl = String.length key in
  pl <= kl
  &&
  let rec at i = i + pl <= kl && (String.sub key i pl = pat || at (i + 1)) in
  at 0

let fire t point ~key =
  let hit = ref false in
  List.iter
    (fun a ->
      if a.sp.sp_point = point && key_matches ~pat:a.sp.sp_key key then begin
        a.seen <- a.seen + 1;
        let deterministic =
          a.fired < a.sp.sp_count
          && a.seen >= a.sp.sp_first
          && (a.seen - a.sp.sp_first) mod a.sp.sp_every = 0
        in
        let probabilistic =
          a.sp.sp_prob > 0. && Rng.float t.rng 1.0 < a.sp.sp_prob
        in
        if deterministic || probabilistic then begin
          if deterministic then a.fired <- a.fired + 1;
          if not !hit then begin
            hit := true;
            t.n_injected <- t.n_injected + 1;
            let ev = Injected (point, key, a.seen) in
            t.log <- ev :: t.log;
            match t.obs with None -> () | Some f -> f ev
          end
        end
      end)
    t.armed;
  !hit

let note t ~what ~key =
  let ev = Noted (what, key) in
  t.log <- ev :: t.log;
  match t.obs with None -> () | Some f -> f ev

let set_observer t obs = t.obs <- obs

let injected t =
  List.rev_map
    (function Injected (p, k, n) -> Some (p, k, n) | Noted _ -> None)
    t.log
  |> List.filter_map (fun x -> x)

let injected_count t = t.n_injected

let notes t =
  List.rev_map
    (function Noted (w, k) -> Some (w, k) | Injected _ -> None)
    t.log
  |> List.filter_map (fun x -> x)

let event_to_string = function
  | Injected (p, k, n) -> Printf.sprintf "inject %s %s #%d" (point_name p) k n
  | Noted (w, k) -> Printf.sprintf "note %s %s" w k

let events t = List.rev_map event_to_string t.log

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = {
  s_seed : int;
  s_plan : plan;
  mutable created : t list;  (* reversed *)
  mutable next : int;
}

let sink ?(seed = 1) plan = { s_seed = seed; s_plan = plan; created = []; next = 0 }

let sink_seed s = s.s_seed
let sink_plan s = s.s_plan

let create_in s ~name =
  (* Split a per-injector seed from the sink seed and the creation index
     the same way Rng.split derives independent streams. *)
  let sub =
    Int64.to_int
      (Rng.mix
         (Int64.add
            (Rng.mix (Int64.of_int s.s_seed))
            (Int64.mul Rng.golden (Int64.of_int (s.next + 1)))))
    land max_int
  in
  s.next <- s.next + 1;
  let t = create ~name ~seed:sub s.s_plan in
  s.created <- t :: s.created;
  t

let faults s = List.rev s.created

let default_ref : sink option ref = ref None
let set_default s = default_ref := s
let default () = !default_ref

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let print ts =
  List.iter
    (fun t ->
      Fmt.pr "== faults: %s (seed %d) ==@." t.f_name t.f_seed;
      if t.log = [] then Fmt.pr "  (no injections, no notes)@."
      else List.iter (fun e -> Fmt.pr "  %s@." (event_to_string e)) (List.rev t.log))
    ts

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ts =
  let injector t =
    let ev = function
      | Injected (p, k, n) ->
          Printf.sprintf
            {|{"type":"inject","point":"%s","key":"%s","op":%d}|}
            (point_name p) (json_escape k) n
      | Noted (w, k) ->
          Printf.sprintf {|{"type":"note","what":"%s","key":"%s"}|}
            (json_escape w) (json_escape k)
    in
    Printf.sprintf
      {|{"name":"%s","seed":%d,"injected":%d,"events":[%s]}|}
      (json_escape t.f_name) t.f_seed t.n_injected
      (String.concat "," (List.rev_map ev t.log))
  in
  "[" ^ String.concat "," (List.map injector ts) ^ "]"
