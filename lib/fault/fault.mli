(** Seeded, deterministic fault injection.

    Like [Kite_check] and [Kite_trace], this layer is designed to cost
    one [match _ with None] on every hot path when disabled: substrate
    layers hold a [Fault.t option] and consult it only where a fault
    could physically occur.  When enabled, each eligible operation is
    counted per injection point and a {!plan} decides — from the count
    and a seeded splitmix64 stream — whether the operation is sabotaged.
    Same seed + same plan + same workload ⇒ the identical injection
    sequence, which is what makes crash/restart recovery testable.

    The library sits below the simulator (it depends only on [fmt]) so
    every layer from [Xenstore] to the device models can hold one. *)

(** {1 Injection points} *)

type point =
  | Evtchn_notify  (** drop an event-channel notification (sender pays,
                       receiver never wakes) *)
  | Xenstore_write  (** lose a xenstore write: no mutation, no watch *)
  | Xenstore_watch  (** lose a single watch-event delivery *)
  | Ring_slot  (** corrupt a request slot; the consumer discards it *)
  | Device_io  (** transient device error (NVMe/NIC); retryable *)

val point_name : point -> string
(** ["evtchn-notify"], ["xenstore-write"], ["xenstore-watch"],
    ["ring-slot"], ["device-io"]. *)

val point_of_name : string -> point option

(** {1 Plans} *)

type spec = {
  sp_point : point;
  sp_key : string;
      (** substring match against the hook's key (port number, xenstore
          path, ring or device name); [""] matches anything *)
  sp_first : int;  (** 1-based eligible-operation index to start at *)
  sp_every : int;  (** then inject every [sp_every]-th eligible op *)
  sp_count : int;  (** cap on deterministic injections from this spec *)
  sp_prob : float;
      (** additional per-op injection probability, drawn from the seeded
          stream; [0.] keeps the spec fully count-based *)
}

val spec :
  ?key:string ->
  ?first:int ->
  ?every:int ->
  ?count:int ->
  ?prob:float ->
  point ->
  spec
(** Defaults: [key:""], [first:1], [every:1], [count:max_int],
    [prob:0.]. *)

type plan = spec list

val default_plan : plan
(** A mild, always-recoverable plan (periodic transient device errors)
    used by [kite_ctl faults] when no [--plan] file is given. *)

val plan_to_string : plan -> string

val plan_of_string : string -> (plan, string) result
(** One spec per line: [POINT key=K first=N every=N count=N prob=F].
    Blank lines and [#] comments are skipped.  Inverse of
    {!plan_to_string}. *)

(** {1 Injectors} *)

type t

val create : ?name:string -> seed:int -> plan -> t

val name : t -> string
val seed : t -> int
val plan : t -> plan

val fire : t -> point -> key:string -> bool
(** The one hook the substrate calls.  Counts the eligible operation and
    returns [true] when the plan injects a fault into it.  Every
    injection is appended to the {!events} log. *)

val note : t -> what:string -> key:string -> unit
(** Record a recovery milestone ("crash", "restart",
    "blkfront.replay", ...) in the same ordered log as injections, so a
    whole crash/recovery sequence can be compared across runs. *)

val injected : t -> (point * string * int) list
(** Injections in order: (point, key, eligible-op index at injection). *)

val injected_count : t -> int
val notes : t -> (string * string) list

val events : t -> string list
(** The merged ordered log — ["inject <point> <key> #<n>"] and
    ["note <what> <key>"] lines — for determinism assertions. *)

(** {1 Observation} *)

type event =
  | Injected of point * string * int
      (** (point, key, eligible-op index), as {!injected} reports *)
  | Noted of string * string  (** (what, key), as {!note} records *)

val set_observer : t -> (event -> unit) option -> unit
(** Install (or clear) an event observer, called after each injection or
    note is appended to the log.  Events carry no timestamp (this layer
    has no clock); an observer that needs one must supply its own.  At
    most one observer per injector; the flight recorder is the intended
    client. *)

(** {1 Sinks: run-wide defaults} *)

(** A sink carries the seed and plan for one run and collects every
    injector created from it; [Scenario] consults the default sink the
    same way it consults [Check.default] and [Trace.default]. *)

type sink

val sink : ?seed:int -> plan -> sink
(** Default seed: [1]. *)

val sink_seed : sink -> int
val sink_plan : sink -> plan

val create_in : sink -> name:string -> t
(** Per-machine injector with a stream split deterministically from the
    sink seed and the creation index (first created gets index 0, so the
    sequence is reproducible run-to-run within a fresh sink). *)

val faults : sink -> t list
(** Injectors created in this sink, in creation order. *)

val set_default : sink option -> unit
val default : unit -> sink option

(** {1 Reporting} *)

val print : t list -> unit
val to_json : t list -> string
