(** xentrace-style event tracing for the Kite model layers.

    One {!t} records the events of a single simulated machine: scheduler
    activity, hypercalls (with their simulated cost and calling domain),
    event-channel sends/deliveries, ring batch sizes, driver-level
    milestones, and request-lifecycle {e spans} (a packet from DomU tx
    grant to bridge egress, a blk request from frontend submit to
    response) with per-hop attributed simulated time.

    Like {!Kite_check.Check}, this library sits {e below}
    [kite_sim]/[kite_xen] in the dependency graph (it depends only on
    [fmt]): the instrumented layers hold a [Trace.t option] consulted at
    each hook point, so a disabled tracer costs one [match] on [None] and
    the benchmarks are unaffected.  Every hook therefore speaks in plain
    ints and strings; timestamps are simulated nanoseconds supplied by the
    caller.

    Exporters: Chrome trace-event JSON (loadable in Perfetto / catapult,
    one track per domain and per process), a per-domain hypercall profile
    (the [hypercalls] ablation bench of DESIGN.md §4), and per-stage span
    duration lists for latency-breakdown tables. *)

type t

val create : ?limit:int -> ?name:string -> unit -> t
(** A fresh tracer.  [limit] (default 1_000_000) bounds the number of
    buffered events; once reached, further events are counted in
    {!dropped} instead of being recorded (hypercall-profile aggregation
    and spans are exact regardless). *)

val name : t -> string

val events : t -> int
(** Number of events recorded so far. *)

val dropped : t -> int
(** Events discarded after the buffer limit was reached. *)

(** {1 Run-wide default}

    [Scenario] consults this when building a testbed: when a sink is set,
    every machine it creates is traced by a fresh [t] registered in the
    sink.  [kite_ctl trace] and the test suite set it. *)

type sink
(** An ordered collection of per-machine tracers belonging to one run. *)

val sink : unit -> sink
val create_in : sink -> name:string -> t
val traces : sink -> t list
(** In creation order. *)

val set_default : sink option -> unit
val default : unit -> sink option

(** {1 Scheduler hooks (called by [Process])} *)

val proc_enter : t -> name:string -> unit
(** The named process starts (or resumes) a step; it becomes the
    attribution target (the Chrome thread) of subsequent events.  A
    ["Domain/thread"] name is split into its track components. *)

val proc_leave : t -> unit

val proc_spawned : t -> at:int -> name:string -> daemon:bool -> unit

val proc_blocked :
  t ->
  at:int ->
  name:string ->
  kind:[ `Sleep of int | `Yield | `Suspend of string option ] ->
  unit

val proc_exited : t -> at:int -> name:string -> unit

(** {1 Hypervisor hooks} *)

val charge : t -> at:int -> domain:string -> op:string -> cost:int -> unit
(** A charged operation ([op] as passed to [Hypervisor.charge], e.g.
    ["hypercall.grant_copy"]); [cost] is its simulated service time in ns.
    Operations named ["hypercall.*"] also feed the exact per-domain
    hypercall profile. *)

val cpu_work : t -> at:int -> domain:string -> cost:int -> unit
(** Plain vCPU occupancy (no hypercall), e.g. per-packet driver CPU. *)

(** {1 Event-channel hooks} *)

val evtchn_send : t -> at:int -> domain:string -> port:int -> unit
val evtchn_deliver : t -> at:int -> domain:string -> port:int -> unit

(** {1 Ring hooks}

    Rings have no clock of their own, so the attaching driver supplies
    [now]. *)

type ring

type side = [ `Req | `Rsp ]

val ring : t -> name:string -> now:(unit -> int) -> ring

val ring_publish : ring -> side -> batch:int -> notify:bool -> unit
(** Producer published [batch] new entries ([push_requests] /
    [push_responses]); [notify] is the event-channel decision. *)

val ring_take : ring -> side -> got:bool -> unit
(** Consumer pulled one entry ([got = true]) or found the ring empty; a
    run of takes ending in an empty poll is recorded as one consume-batch
    event carrying the run length. *)

(** {1 Driver events} *)

val driver :
  t -> at:int -> domain:string -> name:string ->
  args:(string * string) list -> unit
(** Instant driver-level milestone (netback tx/rx batch sizes, wake-tier
    transitions, blkback batch dispatch, ...). *)

(** {1 Request-lifecycle spans}

    A span is identified by [(kind, key, id)]: [kind] groups spans of the
    same shape for the latency breakdown (["net.tx"], ["blk"]), [key]
    distinguishes device instances (["vif1.0"]), [id] is the protocol
    request id.  A span begins in its first stage; each {!span_hop} closes
    the current stage and opens the next; {!span_end} closes the span.
    Stages therefore partition the span's lifetime, so per-stage durations
    always sum to at most the span total. *)

val span_begin :
  t -> at:int -> kind:string -> key:string -> id:int -> stage:string -> unit

val span_hop :
  t -> at:int -> kind:string -> key:string -> id:int -> stage:string ->
  args:(string * string) list -> unit
(** A hop for an unknown span (the request began before tracing was
    enabled, or the id never had a {!span_begin} — e.g. a byzantine
    frontend writing the ring directly) is dropped but counted in
    {!orphan_hops}: lost attribution is visible, not silent. *)

val span_end : t -> at:int -> kind:string -> key:string -> id:int -> unit
(** An end for an unknown span is dropped but counted in
    {!orphan_ends}, like {!span_hop}. *)

type span = {
  span_kind : string;
  span_key : string;
  span_id : int;
  span_begin_at : int;
  span_end_at : int;
  span_stages : (string * int * int) list;
      (** (stage, start, stop), in traversal order; intervals are
          consecutive and lie within [[span_begin_at, span_end_at]]. *)
}

val spans : t -> span list
(** Completed spans, in completion order. *)

val open_spans : t -> int
(** Requests still in flight (began but not ended). *)

val orphan_hops : t -> int
(** Hops that arrived for spans never begun (or already ended) and were
    dropped.  Scenario teardown reports a non-zero count as a
    [span-orphaned] checker warning. *)

val orphan_ends : t -> int
(** Ends that arrived for unknown spans, counted like {!orphan_hops}. *)

val set_span_observer : t -> (span -> unit) option -> unit
(** Install (or clear) the {e primary} completed-span observer, called
    from {!span_end} after the span is recorded.  At most one primary
    observer per tracer; the flight recorder is the intended client.
    [None] (the default) keeps [span_end] on its pre-observer path. *)

val add_span_observer : t -> (span -> unit) -> unit
(** Append an {e additive} completed-span observer.  Additive observers
    run after the primary one and are never replaced by
    {!set_span_observer}, so independent layers (the path attribution
    engine, the flight recorder) compose on one tracer.  They live as
    long as the tracer. *)

(** {1 Exporters} *)

val to_chrome_json : t list -> string
(** The machines' events as a Chrome trace-event JSON array (load in
    Perfetto or chrome://tracing).  Each domain becomes a process track
    (named ["machine/domain"]), each simulated thread a thread track;
    completed spans are rendered as per-stage slices on a dedicated
    ["spans"] track per machine. *)

val hypercall_profile :
  t list -> (string * string * string * int * int) list
(** [(machine, domain, op, count, total_cost_ns)] rows for every
    ["hypercall.*"] operation charged, sorted by machine, domain, op.
    Exact even when the event buffer overflowed. *)

val breakdown : t list -> (string * (string * float list) list) list
(** Per span kind, per stage (first-seen order, ["TOTAL"] last): the
    attributed durations in ns of every completed span, ready for
    percentile math. *)
