(* Event storage: a flat growable array of small records.  The tracer is
   per simulated machine, so timestamps (simulated ns supplied by the
   instrumented layers) are monotone per process and comparable across
   the whole buffer. *)

type phase = Instant | Complete

type event = {
  ev_at : int;  (* ns *)
  ev_dur : int;  (* ns; 0 for instants *)
  ev_pid : int;
  ev_tid : int;
  ev_ph : phase;
  ev_name : string;
  ev_cat : string;
  ev_args : (string * string) list;
}

let dummy_event =
  {
    ev_at = 0;
    ev_dur = 0;
    ev_pid = 0;
    ev_tid = 0;
    ev_ph = Instant;
    ev_name = "";
    ev_cat = "";
    ev_args = [];
  }

type span = {
  span_kind : string;
  span_key : string;
  span_id : int;
  span_begin_at : int;
  span_end_at : int;
  span_stages : (string * int * int) list;
}

(* An in-flight span: stages are collected as (name, start, args) marks,
   most recent first; span_end closes them into intervals. *)
type open_span = {
  os_kind : string;
  os_key : string;
  os_begin : int;
  mutable os_marks : (string * int * (string * string) list) list;
}

type t = {
  tname : string;
  limit : int;
  mutable buf : event array;
  mutable n : int;
  mutable dropped : int;
  (* Track interning: pid per domain name, tid per (pid, thread name). *)
  pids : (string, int) Hashtbl.t;
  mutable pid_names : (int * string) list;  (* reversed *)
  tids : (string, int) Hashtbl.t;  (* key "<pid>|<thread>" *)
  mutable tid_names : ((int * int) * string) list;  (* reversed *)
  mutable next_pid : int;
  mutable next_tid : int;
  (* Attribution stack maintained by proc_enter/proc_leave. *)
  mutable cur : (string * string) list;  (* (domain, thread) *)
  (* Exact per-domain hypercall aggregation, immune to buffer overflow. *)
  hyp : (string * string, int ref * int ref) Hashtbl.t;
  (* Spans. *)
  open_tbl : (string, open_span) Hashtbl.t;
  mutable done_spans : span list;  (* reversed *)
  mutable done_count : int;
  (* Completed-span observer (the flight recorder's tap); [None] keeps
     span_end allocation-identical to the pre-observer shape. *)
  mutable span_obs : (span -> unit) option;
  (* Additive observers (the path attribution tap): appended, never
     clobbered by [set_span_observer], so layers compose. *)
  mutable span_taps : (span -> unit) list;
  (* Hops/ends that arrived for spans never begun (or already ended):
     lost attribution, counted instead of silently vanishing. *)
  mutable orphan_hops : int;
  mutable orphan_ends : int;
}

let create ?(limit = 1_000_000) ?(name = "trace") () =
  {
    tname = name;
    limit;
    buf = Array.make 1024 dummy_event;
    n = 0;
    dropped = 0;
    pids = Hashtbl.create 16;
    pid_names = [];
    tids = Hashtbl.create 64;
    tid_names = [];
    next_pid = 1;
    next_tid = 1;
    cur = [];
    hyp = Hashtbl.create 64;
    open_tbl = Hashtbl.create 256;
    done_spans = [];
    done_count = 0;
    span_obs = None;
    span_taps = [];
    orphan_hops = 0;
    orphan_ends = 0;
  }

let name t = t.tname
let events t = t.n
let dropped t = t.dropped

(* ------------------------------------------------------------------ *)
(* Run-wide default sink                                               *)
(* ------------------------------------------------------------------ *)

type sink = { mutable members : t list (* reversed *) }

let sink () = { members = [] }

let create_in s ~name =
  let t = create ~name () in
  s.members <- t :: s.members;
  t

let traces s = List.rev s.members

let default_ref : sink option ref = ref None
let set_default v = default_ref := v
let default () = !default_ref

(* ------------------------------------------------------------------ *)
(* Interning and emission                                              *)
(* ------------------------------------------------------------------ *)

let pid_of t domain =
  match Hashtbl.find_opt t.pids domain with
  | Some p -> p
  | None ->
      let p = t.next_pid in
      t.next_pid <- p + 1;
      Hashtbl.add t.pids domain p;
      t.pid_names <- (p, domain) :: t.pid_names;
      p

let tid_of t pid thread =
  let key = string_of_int pid ^ "|" ^ thread in
  match Hashtbl.find_opt t.tids key with
  | Some i -> i
  | None ->
      let i = t.next_tid in
      t.next_tid <- i + 1;
      Hashtbl.add t.tids key i;
      t.tid_names <- ((pid, i), thread) :: t.tid_names;
      i

(* "Domain/thread" process names (the [Hypervisor.spawn] convention) are
   split into their track components; bare names land on a "sim" track. *)
let split_name name =
  match String.index_opt name '/' with
  | Some i ->
      (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | None -> ("sim", name)

let current t =
  match t.cur with (d, th) :: _ -> (d, th) | [] -> ("sim", "(interrupt)")

let emit t ~at ~dur ~pid ~tid ~ph ~name ~cat ~args =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    if t.n = Array.length t.buf then begin
      let bigger = Array.make (2 * t.n) dummy_event in
      Array.blit t.buf 0 bigger 0 t.n;
      t.buf <- bigger
    end;
    t.buf.(t.n) <-
      {
        ev_at = at;
        ev_dur = dur;
        ev_pid = pid;
        ev_tid = tid;
        ev_ph = ph;
        ev_name = name;
        ev_cat = cat;
        ev_args = args;
      };
    t.n <- t.n + 1
  end

(* Emit on the track of the currently-running process, inside [domain]. *)
let emit_cur t ~at ~dur ~domain ~ph ~name ~cat ~args =
  let _, thread = current t in
  let pid = pid_of t domain in
  emit t ~at ~dur ~pid ~tid:(tid_of t pid thread) ~ph ~name ~cat ~args

(* ------------------------------------------------------------------ *)
(* Scheduler hooks                                                     *)
(* ------------------------------------------------------------------ *)

let proc_enter t ~name = t.cur <- split_name name :: t.cur

let proc_leave t = match t.cur with _ :: rest -> t.cur <- rest | [] -> ()

let track_of_name t pname =
  let domain, thread = split_name pname in
  let pid = pid_of t domain in
  (pid, tid_of t pid thread)

let proc_spawned t ~at ~name ~daemon =
  let pid, tid = track_of_name t name in
  emit t ~at ~dur:0 ~pid ~tid ~ph:Instant ~name:"spawn" ~cat:"sched"
    ~args:(if daemon then [ ("daemon", "1") ] else [])

let proc_blocked t ~at ~name ~kind =
  let pid, tid = track_of_name t name in
  let ev, args =
    match kind with
    | `Sleep span -> ("sleep", [ ("ns", string_of_int span) ])
    | `Yield -> ("yield", [])
    | `Suspend None -> ("wait", [])
    | `Suspend (Some label) -> ("wait", [ ("on", label) ])
  in
  emit t ~at ~dur:0 ~pid ~tid ~ph:Instant ~name:ev ~cat:"sched" ~args

let proc_exited t ~at ~name =
  let pid, tid = track_of_name t name in
  emit t ~at ~dur:0 ~pid ~tid ~ph:Instant ~name:"exit" ~cat:"sched" ~args:[]

(* ------------------------------------------------------------------ *)
(* Hypervisor hooks                                                    *)
(* ------------------------------------------------------------------ *)

let hypercall_prefix = "hypercall."

let is_hypercall op =
  String.length op > 10 && String.sub op 0 10 = hypercall_prefix

let charge t ~at ~domain ~op ~cost =
  if is_hypercall op then begin
    let key = (domain, op) in
    let count, total =
      match Hashtbl.find_opt t.hyp key with
      | Some cell -> cell
      | None ->
          let cell = (ref 0, ref 0) in
          Hashtbl.add t.hyp key cell;
          cell
    in
    incr count;
    total := !total + cost
  end;
  emit_cur t ~at ~dur:cost ~domain ~ph:Complete ~name:op ~cat:"hv" ~args:[]

let cpu_work t ~at ~domain ~cost =
  emit_cur t ~at ~dur:cost ~domain ~ph:Complete ~name:"cpu_work" ~cat:"cpu"
    ~args:[]

(* ------------------------------------------------------------------ *)
(* Event channels                                                      *)
(* ------------------------------------------------------------------ *)

let evtchn_send t ~at ~domain ~port =
  emit_cur t ~at ~dur:0 ~domain ~ph:Instant ~name:"evtchn.send" ~cat:"evtchn"
    ~args:[ ("port", string_of_int port) ]

let evtchn_deliver t ~at ~domain ~port =
  let pid = pid_of t domain in
  emit t ~at ~dur:0 ~pid ~tid:(tid_of t pid "(interrupt)") ~ph:Instant
    ~name:"evtchn.deliver" ~cat:"evtchn"
    ~args:[ ("port", string_of_int port) ]

(* ------------------------------------------------------------------ *)
(* Rings                                                               *)
(* ------------------------------------------------------------------ *)

type side = [ `Req | `Rsp ]

type ring = {
  rt : t;
  rname : string;
  rnow : unit -> int;
  mutable req_run : int;
  mutable rsp_run : int;
}

let ring t ~name ~now = { rt = t; rname = name; rnow = now; req_run = 0; rsp_run = 0 }

let side_name = function `Req -> "req" | `Rsp -> "rsp"

let ring_event r name args =
  let t = r.rt in
  let pid = pid_of t "rings" in
  emit t ~at:(r.rnow ()) ~dur:0 ~pid ~tid:(tid_of t pid r.rname) ~ph:Instant
    ~name ~cat:"ring" ~args

let ring_publish r side ~batch ~notify =
  if batch > 0 then
    ring_event r
      ("publish." ^ side_name side)
      [ ("batch", string_of_int batch); ("notify", if notify then "1" else "0") ]

let ring_take r side ~got =
  match side with
  | `Req ->
      if got then r.req_run <- r.req_run + 1
      else if r.req_run > 0 then begin
        let n = r.req_run in
        r.req_run <- 0;
        ring_event r "consume.req" [ ("batch", string_of_int n) ]
      end
  | `Rsp ->
      if got then r.rsp_run <- r.rsp_run + 1
      else if r.rsp_run > 0 then begin
        let n = r.rsp_run in
        r.rsp_run <- 0;
        ring_event r "consume.rsp" [ ("batch", string_of_int n) ]
      end

(* ------------------------------------------------------------------ *)
(* Driver events                                                       *)
(* ------------------------------------------------------------------ *)

let driver t ~at ~domain ~name ~args =
  emit_cur t ~at ~dur:0 ~domain ~ph:Instant ~name ~cat:"driver" ~args

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_tbl_key ~kind ~key ~id =
  kind ^ "#" ^ key ^ "#" ^ string_of_int id

let span_begin t ~at ~kind ~key ~id ~stage =
  Hashtbl.replace t.open_tbl
    (span_tbl_key ~kind ~key ~id)
    { os_kind = kind; os_key = key; os_begin = at; os_marks = [ (stage, at, []) ] }

let span_hop t ~at ~kind ~key ~id ~stage ~args =
  match Hashtbl.find_opt t.open_tbl (span_tbl_key ~kind ~key ~id) with
  | Some os -> os.os_marks <- (stage, at, args) :: os.os_marks
  | None -> t.orphan_hops <- t.orphan_hops + 1

let span_end t ~at ~kind ~key ~id =
  let k = span_tbl_key ~kind ~key ~id in
  match Hashtbl.find_opt t.open_tbl k with
  | None -> t.orphan_ends <- t.orphan_ends + 1
  | Some os ->
      Hashtbl.remove t.open_tbl k;
      (* Close the marks into consecutive intervals; also render them as
         Chrome slices on the machine's dedicated span track. *)
      let pid = pid_of t "spans" in
      let tid = tid_of t pid (kind ^ ":" ^ key) in
      let rec close marks stop acc =
        match marks with
        | [] -> acc
        | (stage, start, args) :: older ->
            emit t ~at:start ~dur:(stop - start) ~pid ~tid ~ph:Complete
              ~name:stage ~cat:kind
              ~args:(("id", string_of_int id) :: args);
            close older start ((stage, start, stop) :: acc)
      in
      let stages = close os.os_marks at [] in
      let sp =
        {
          span_kind = kind;
          span_key = key;
          span_id = id;
          span_begin_at = os.os_begin;
          span_end_at = at;
          span_stages = stages;
        }
      in
      t.done_spans <- sp :: t.done_spans;
      t.done_count <- t.done_count + 1;
      (match t.span_obs with None -> () | Some f -> f sp);
      (match t.span_taps with [] -> () | taps -> List.iter (fun f -> f sp) taps)

let spans t = List.rev t.done_spans
let open_spans t = Hashtbl.length t.open_tbl
let set_span_observer t obs = t.span_obs <- obs
let add_span_observer t f = t.span_taps <- t.span_taps @ [ f ]
let orphan_hops t = t.orphan_hops
let orphan_ends t = t.orphan_ends

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string b "}"

(* Timestamps are emitted in microseconds (the trace-event unit) with ns
   resolution preserved as fractional digits. *)
let add_ts b ns = Buffer.add_string b (Printf.sprintf "%.3f" (float_of_int ns /. 1000.))

let to_chrome_json ts =
  let b = Buffer.create 65536 in
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  Buffer.add_string b "[\n";
  List.iteri
    (fun mi t ->
      let base = (mi + 1) * 1000 in
      let machine_prefix = if List.length ts > 1 then t.tname ^ "/" else "" in
      (* Track metadata. *)
      List.iter
        (fun (pid, pname) ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf
               "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
               (base + pid)
               (json_escape (machine_prefix ^ pname))))
        (List.rev t.pid_names);
      List.iter
        (fun ((pid, tid), tname) ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf
               "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               (base + pid) tid (json_escape tname)))
        (List.rev t.tid_names);
      for i = 0 to t.n - 1 do
        let e = t.buf.(i) in
        sep ();
        Buffer.add_string b "{\"name\":\"";
        Buffer.add_string b (json_escape e.ev_name);
        Buffer.add_string b "\",\"cat\":\"";
        Buffer.add_string b (json_escape e.ev_cat);
        Buffer.add_string b "\",\"ph\":\"";
        Buffer.add_string b
          (match e.ev_ph with Instant -> "i" | Complete -> "X");
        Buffer.add_string b "\",\"ts\":";
        add_ts b e.ev_at;
        (match e.ev_ph with
        | Complete ->
            Buffer.add_string b ",\"dur\":";
            add_ts b e.ev_dur
        | Instant -> Buffer.add_string b ",\"s\":\"t\"");
        Buffer.add_string b
          (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"args\":" (base + e.ev_pid)
             e.ev_tid);
        add_args b e.ev_args;
        Buffer.add_string b "}"
      done)
    ts;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Hypercall profile                                                   *)
(* ------------------------------------------------------------------ *)

let hypercall_profile ts =
  List.concat_map
    (fun t ->
      Hashtbl.fold
        (fun (domain, op) (count, total) acc ->
          (t.tname, domain, op, !count, !total) :: acc)
        t.hyp []
      |> List.sort compare)
    ts

(* ------------------------------------------------------------------ *)
(* Latency breakdown                                                   *)
(* ------------------------------------------------------------------ *)

let breakdown ts =
  (* kind -> stage -> durations, preserving first-seen order. *)
  let kinds : (string * (string * float list ref) list ref) list ref = ref [] in
  let stage_cell kind stage =
    let stages =
      match List.assoc_opt kind !kinds with
      | Some r -> r
      | None ->
          let r = ref [] in
          kinds := !kinds @ [ (kind, r) ];
          r
    in
    match List.assoc_opt stage !stages with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        stages := !stages @ [ (stage, cell) ];
        cell
  in
  List.iter
    (fun t ->
      List.iter
        (fun sp ->
          List.iter
            (fun (stage, start, stop) ->
              let cell = stage_cell sp.span_kind stage in
              cell := float_of_int (stop - start) :: !cell)
            sp.span_stages;
          let cell = stage_cell sp.span_kind "TOTAL" in
          cell := float_of_int (sp.span_end_at - sp.span_begin_at) :: !cell)
        (spans t))
    ts;
  List.map
    (fun (kind, stages) ->
      (kind, List.map (fun (stage, cell) -> (stage, List.rev !cell)) !stages))
    !kinds
