(** Findings collected by the invariant checkers.

    A report is the sink shared by every {!Check} instance of a run: the
    checkers append findings as violations are observed (or during the
    end-of-run audits) and the CLI renders the whole report once, as text
    or JSON, before deciding the exit status. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string

type finding = {
  severity : severity;
  subsystem : string;  (** "grant", "ring", "sched" or "xenstore" *)
  rule : string;  (** stable slug, e.g. "grant-leak" — what tests assert *)
  provenance : string;  (** process / ring / scenario the violation hit *)
  message : string;
}

type t

val create : unit -> t

val add : t -> finding -> unit

val set_observer : t -> (finding -> unit) option -> unit
(** Install (or clear) an observer called from {!add} after each finding
    is recorded.  At most one observer per report; the flight recorder is
    the intended client.  A report is shared by every checker of a run,
    so the observer sees findings from all of them. *)

val findings : t -> finding list
(** In the order they were recorded. *)

val count : t -> int
val errors : t -> int
val warnings : t -> int

val by_rule : t -> string -> finding list

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, one line per finding plus a summary. *)

val print : t -> unit

val to_json : t -> string
(** The whole report as a JSON object (no external dependencies). *)
