(** Protocol-invariant checkers for the Kite model layers.

    One {!t} carries the shadow state for a single simulated machine: a
    grant-table sanitizer, a ring protocol lint, a cooperative-scheduler
    monopolization/quiescence detector and a xenstore lint.  The
    instrumented modules ([Grant_table], [Ring], [Xenstore], [Process])
    each hold a [Check.t option] (or {!ring} handle) and call the hooks
    below at their few mutation points — a single [option] test when
    checking is disabled, so benchmarks are unaffected.

    This library sits below [kite_sim]/[kite_xen] in the dependency
    graph, so every hook speaks in plain ints and strings.

    Findings go to the {!Report} shared at {!create} time; several
    machines (scenarios) of one run report into the same report. *)

type config = {
  max_ops_without_block : int;
      (** Instrumented operations a process may perform between blocking
          points before it is flagged as monopolizing the cooperative
          scheduler. *)
}

val default_config : config

type t

val create : ?config:config -> ?name:string -> Report.t -> t
(** [name] labels end-of-run findings (usually the scenario name). *)

val report : t -> Report.t

(** {1 Run-wide default}

    [Scenario] consults this when building a testbed: when set, every
    machine it creates is instrumented with a fresh [t] targeting the
    stored report.  [kite_ctl check] and the test suite set it. *)

val set_default : (config * Report.t) option -> unit
val default : unit -> (config * Report.t) option

(** {1 Scheduler hooks (called by [Process])} *)

val proc_spawned : t -> name:string -> daemon:bool -> int
(** Returns the checker-side process id passed to the other hooks. *)

val proc_enter : t -> int -> unit
(** The process starts (or resumes) a step; it becomes the attribution
    target for subsequent hook events. *)

val proc_leave : t -> unit
(** The step ended (the process blocked or exited). *)

val proc_blocked :
  t -> int -> kind:[ `Sleep | `Yield | `Suspend of string option ] -> unit
(** The process performed a blocking operation.  [`Suspend label] is an
    indefinite wait (condition/mailbox); this is where the lost-wakeup
    lint fires for ring consumers that block without re-arming. *)

val proc_exited : t -> int -> unit

(** {1 Grant-table hooks} *)

val grant_granted : t -> gref:int -> granter:int -> grantee:int -> unit
val grant_map : t -> gref:int -> grantee:int -> unit
val grant_unmap : t -> gref:int -> grantee:int -> unit
val grant_end : t -> gref:int -> granter:int -> unit
val grant_copy : t -> gref:int -> unit

(** {1 Ring hooks} *)

type ring
(** Per-ring shadow state (both endpoints share it, like the ring page). *)

type side = [ `Req | `Rsp ]

val ring : t -> name:string -> ring

val ring_push : ring -> side -> used:int -> size:int -> unit
(** Called before the module's own full-ring check; [used >= size] is an
    overflow. *)

val ring_publish : ring -> side -> old_prod:int -> prod:int -> unit
val ring_take : ring -> side -> got:bool -> unit
val ring_final_check : ring -> side -> unit

val mq_claim : t -> dev:string -> queue:int -> slot:int -> unit
(** A multi-queue frontend pushed request [slot] (a device-global id)
    onto [queue].  Emits the [mq-slot-duplicated] error if the slot is
    still in flight on a different queue of the same device — no slot
    may appear in two queues. *)

val mq_release : t -> dev:string -> slot:int -> unit
(** The response for [slot] retired it (or a crash dropped it). *)

(** {1 Xenstore hooks} *)

val watch_added : t -> id:int -> path:string -> token:string -> unit
val watch_removed : t -> id:int -> unit
val tx_opened : t -> id:int -> unit
val tx_closed : t -> id:int -> unit
val write_denied : t -> domid:int -> path:string -> unit

val xenbus_bad_state : t -> path:string -> value:string -> unit
(** An unparsable value in a [.../state] node — a protocol violation the
    xenbus layer would otherwise silently coerce to [Closed]. *)

val xenbus_bad_transition : t -> path:string -> from_:string -> to_:string -> unit
(** A state write that is not a legal edge of the xenbus device state
    machine (see [Xenbus.legal_transition]). *)

(** {1 Trust-boundary hooks}

    Fired by a backend when a frontend-supplied index, reference, length
    or state fails validation.  Detection is the *expected* outcome of an
    adversary campaign, so these are findings about the guest, not the
    model: Warning severity, subsystem ["adversary"]. *)

val guest_fault :
  t -> domid:int -> device:string -> attack:string -> detail:string -> unit
(** One rejected attack primitive.  [attack] is the attack-class slug
    ({!Kite_drivers.Guest_fault.slug}); the finding's rule is
    ["guest-" ^ attack]. *)

val guest_quarantined :
  t -> domid:int -> device:string -> action:string -> faults:int -> unit
(** The backend's quarantine policy escalated: [action] is ["throttle"],
    ["detach"] or ["offline"], after [faults] accumulated guest faults on
    [device].  Rule ["guest-quarantined"]. *)

(** {1 Audits} *)

val quiescence : t -> pending:int -> unit
(** Deadlock report: when the event queue is empty ([pending = 0]) but
    non-daemon processes are still blocked on indefinite waits, name them
    and what they wait on. *)

val finalize : t -> pending:int -> unit
(** End-of-run audit: grants still active / pages still mapped, watches
    never unregistered, transactions left open, plus {!quiescence}. *)
