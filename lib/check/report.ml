type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type finding = {
  severity : severity;
  subsystem : string;
  rule : string;
  provenance : string;
  message : string;
}

type t = {
  mutable rev : finding list;
  mutable errors : int;
  mutable warnings : int;
  (* Finding observer (the flight recorder's tap); [None] keeps [add]
     on its original path. *)
  mutable obs : (finding -> unit) option;
}

let create () = { rev = []; errors = 0; warnings = 0; obs = None }

let add t f =
  t.rev <- f :: t.rev;
  (match f.severity with
  | Error -> t.errors <- t.errors + 1
  | Warning -> t.warnings <- t.warnings + 1
  | Info -> ());
  match t.obs with None -> () | Some fn -> fn f

let set_observer t obs = t.obs <- obs

let findings t = List.rev t.rev
let count t = List.length t.rev
let errors t = t.errors
let warnings t = t.warnings

let by_rule t rule = List.filter (fun f -> f.rule = rule) (findings t)

let pp ppf t =
  List.iter
    (fun f ->
      Format.fprintf ppf "%-7s [%s/%s] %s: %s@."
        (severity_to_string f.severity)
        f.subsystem f.rule f.provenance f.message)
    (findings t);
  Format.fprintf ppf "%d finding(s): %d error(s), %d warning(s)@." (count t)
    t.errors t.warnings

let print t = pp Format.std_formatter t

(* Minimal JSON string escaping: the messages only contain printable
   ASCII, but be safe about quotes, backslashes and control bytes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"severity\":\"%s\",\"subsystem\":\"%s\",\"rule\":\"%s\",\
            \"provenance\":\"%s\",\"message\":\"%s\"}"
           (severity_to_string f.severity)
           (json_escape f.subsystem) (json_escape f.rule)
           (json_escape f.provenance) (json_escape f.message)))
    (findings t);
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d}" t.errors t.warnings);
  Buffer.contents buf
