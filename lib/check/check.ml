type config = { max_ops_without_block : int }

let default_config = { max_ops_without_block = 10_000 }

type grant_entry = {
  g_granter : int;
  g_grantee : int;
  mutable g_mapped : bool;
  mutable g_revoked : bool;
}

type proc = {
  p_id : int;
  p_name : string;
  p_daemon : bool;
  mutable p_blocked_on : string option;  (* Some label iff suspended *)
  mutable p_ops : int;
  mutable p_hog_reported : bool;
}

type side = [ `Req | `Rsp ]

type side_state = {
  mutable needs_rearm : bool;
      (* a take succeeded since the consumer last ran final_check *)
  mutable last_consumer : int;  (* pid, -1 = none / interrupt context *)
  mutable lw_reported : bool;
}

type ring = { rc : t; r_name : string; r_req : side_state; r_rsp : side_state }

and t = {
  config : config;
  report : Report.t;
  name : string;
  grants : (int, grant_entry) Hashtbl.t;
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable cur : proc option;
  mutable rings : ring list;
  watches : (int, string * string) Hashtbl.t;  (* id -> (path, token) *)
  txs : (int, unit) Hashtbl.t;
  mq_slots : (string * int, int) Hashtbl.t;  (* (device, slot) -> queue *)
}

let create ?(config = default_config) ?(name = "-") report =
  {
    config;
    report;
    name;
    grants = Hashtbl.create 64;
    procs = Hashtbl.create 32;
    next_pid = 0;
    cur = None;
    rings = [];
    watches = Hashtbl.create 8;
    txs = Hashtbl.create 4;
    mq_slots = Hashtbl.create 64;
  }

let report t = t.report

let default_ref : (config * Report.t) option ref = ref None
let set_default v = default_ref := v
let default () = !default_ref

let cur_name t = match t.cur with Some p -> p.p_name | None -> "-"

let emit t severity subsystem rule ?prov fmt =
  let provenance = match prov with Some p -> p | None -> cur_name t in
  Printf.ksprintf
    (fun message ->
      Report.add t.report
        { Report.severity; subsystem; rule; provenance; message })
    fmt

(* Every hook call is one "instrumented operation" attributed to the
   running process; a long run of them without a blocking point is the
   monopolization hazard Kite's pusher/soft_start threads avoid. *)
let account t =
  match t.cur with
  | None -> ()
  | Some p ->
      p.p_ops <- p.p_ops + 1;
      if (not p.p_hog_reported) && p.p_ops > t.config.max_ops_without_block
      then begin
        p.p_hog_reported <- true;
        emit t Report.Warning "sched" "sched-hog" ~prov:p.p_name
          "process performed %d instrumented operations without \
           yield/sleep/block (limit %d): monopolizes the cooperative \
           scheduler"
          p.p_ops t.config.max_ops_without_block
      end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let proc_spawned t ~name ~daemon =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Hashtbl.replace t.procs pid
    {
      p_id = pid;
      p_name = name;
      p_daemon = daemon;
      p_blocked_on = None;
      p_ops = 0;
      p_hog_reported = false;
    };
  pid

let proc_enter t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p ->
      p.p_blocked_on <- None;
      t.cur <- Some p
  | None -> t.cur <- None

let proc_leave t = t.cur <- None

let check_lost_wakeup t (p : proc) =
  let side r = function `Req -> r.r_req | `Rsp -> r.r_rsp in
  let side_fn = function
    | `Req -> "final_check_for_requests"
    | `Rsp -> "final_check_for_responses"
  in
  List.iter
    (fun r ->
      List.iter
        (fun sd ->
          let s = side r sd in
          if s.needs_rearm && s.last_consumer = p.p_id && not s.lw_reported
          then begin
            s.lw_reported <- true;
            emit t Report.Error "ring" "ring-lost-wakeup" ~prov:p.p_name
              "consumer of ring %s blocked without re-arming notifications \
               (%s): lost-wakeup hazard"
              r.r_name (side_fn sd)
          end)
        [ `Req; `Rsp ])
    t.rings

let proc_blocked t pid ~kind =
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some p -> (
      p.p_ops <- 0;
      match kind with
      | `Sleep | `Yield -> p.p_blocked_on <- None
      | `Suspend label ->
          p.p_blocked_on <-
            Some (Option.value label ~default:"unlabelled suspension");
          check_lost_wakeup t p)

let proc_exited t pid = Hashtbl.remove t.procs pid

(* ------------------------------------------------------------------ *)
(* Grant table                                                         *)
(* ------------------------------------------------------------------ *)

let grant_granted t ~gref ~granter ~grantee =
  account t;
  Hashtbl.replace t.grants gref
    { g_granter = granter; g_grantee = grantee; g_mapped = false;
      g_revoked = false }

let bad_ref t op gref =
  emit t Report.Error "grant" "grant-bad-ref" "%s of unknown grant ref %d" op
    gref

let use_after_revoke t op gref e =
  emit t Report.Error "grant" "grant-use-after-revoke"
    "%s of revoked grant %d (was domain %d -> domain %d)" op gref e.g_granter
    e.g_grantee

let grant_map t ~gref ~grantee =
  account t;
  match Hashtbl.find_opt t.grants gref with
  | None -> bad_ref t "map" gref
  | Some e when e.g_revoked -> use_after_revoke t "map" gref e
  | Some e ->
      (* Mapping while already mapped is the persistent-reference fast
         path, not a violation.  A wrong-grantee map is rejected by the
         grant table itself, so do not transition shadow state for it. *)
      if e.g_grantee = grantee then e.g_mapped <- true

let grant_unmap t ~gref ~grantee =
  account t;
  match Hashtbl.find_opt t.grants gref with
  | None -> bad_ref t "unmap" gref
  | Some e when e.g_revoked -> use_after_revoke t "unmap" gref e
  | Some e when e.g_grantee <> grantee -> ()
  | Some e when not e.g_mapped ->
      emit t Report.Error "grant" "grant-double-unmap"
        "unmap of grant %d (domain %d -> domain %d) which is not mapped" gref
        e.g_granter e.g_grantee
  | Some e -> e.g_mapped <- false

let grant_end t ~gref ~granter =
  account t;
  match Hashtbl.find_opt t.grants gref with
  | None -> bad_ref t "end_access" gref
  | Some e when e.g_revoked -> use_after_revoke t "end_access" gref e
  | Some e when e.g_granter <> granter -> ()
  | Some e when e.g_mapped ->
      emit t Report.Error "grant" "grant-end-while-mapped"
        "end_access of grant %d (domain %d -> domain %d) while the grantee \
         still has it mapped"
        gref e.g_granter e.g_grantee
  | Some e -> e.g_revoked <- true

let grant_copy t ~gref =
  account t;
  match Hashtbl.find_opt t.grants gref with
  | None -> bad_ref t "grant copy" gref
  | Some e when e.g_revoked -> use_after_revoke t "grant copy" gref e
  | Some _ -> ()

(* ------------------------------------------------------------------ *)
(* Rings                                                               *)
(* ------------------------------------------------------------------ *)

let ring t ~name =
  let fresh () = { needs_rearm = false; last_consumer = -1;
                   lw_reported = false } in
  let r = { rc = t; r_name = name; r_req = fresh (); r_rsp = fresh () } in
  t.rings <- r :: t.rings;
  r

let side r = function `Req -> r.r_req | `Rsp -> r.r_rsp

let side_name = function `Req -> "request" | `Rsp -> "response"

let ring_push r sd ~used ~size =
  account r.rc;
  if used >= size then
    emit r.rc Report.Error "ring" "ring-overflow"
      "push on the %s side of ring %s with %d/%d slots used: overflow"
      (side_name sd) r.r_name used size

let ring_publish r sd ~old_prod ~prod =
  account r.rc;
  if prod < old_prod then
    emit r.rc Report.Error "ring" "ring-producer-regression"
      "%s producer index of ring %s moved backwards (%d -> %d)"
      (side_name sd) r.r_name old_prod prod

let ring_take r sd ~got =
  account r.rc;
  if got then begin
    let s = side r sd in
    s.needs_rearm <- true;
    s.last_consumer <-
      (match r.rc.cur with Some p -> p.p_id | None -> -1)
  end

let ring_final_check r sd =
  account r.rc;
  (side r sd).needs_rearm <- false

(* ------------------------------------------------------------------ *)
(* Multi-queue slot ownership                                          *)
(*                                                                     *)
(* A multi-queue device's request identifiers are device-global; each  *)
(* one must be in flight on at most one queue at a time.  Frontends    *)
(* claim the slot when they push the request and release it when the   *)
(* response (or a crash) retires it; a claim landing on a different    *)
(* queue while the slot is still live means the steering function or   *)
(* the replay path double-issued it.                                   *)
(* ------------------------------------------------------------------ *)

let mq_claim t ~dev ~queue ~slot =
  account t;
  (match Hashtbl.find_opt t.mq_slots (dev, slot) with
  | Some q when q <> queue ->
      emit t Report.Error "ring" "mq-slot-duplicated"
        "slot %d of %s claimed by queue %d while still in flight on queue %d"
        slot dev queue q
  | Some _ | None -> ());
  Hashtbl.replace t.mq_slots (dev, slot) queue

let mq_release t ~dev ~slot =
  account t;
  Hashtbl.remove t.mq_slots (dev, slot)

(* ------------------------------------------------------------------ *)
(* Xenstore                                                            *)
(* ------------------------------------------------------------------ *)

let watch_added t ~id ~path ~token =
  account t;
  Hashtbl.replace t.watches id (path, token)

let watch_removed t ~id =
  account t;
  Hashtbl.remove t.watches id

let tx_opened t ~id =
  account t;
  Hashtbl.replace t.txs id ()

let tx_closed t ~id =
  account t;
  Hashtbl.remove t.txs id

let write_denied t ~domid ~path =
  account t;
  emit t Report.Info "xenstore" "xs-write-denied"
    "domain %d denied write to %s" domid path

let xenbus_bad_state t ~path ~value =
  account t;
  emit t Report.Error "xenstore" "xenbus-bad-state"
    "unparsable xenbus state %S at %s (coerced to Closed)" value path

let xenbus_bad_transition t ~path ~from_ ~to_ =
  account t;
  emit t Report.Warning "xenstore" "xenbus-bad-transition"
    "illegal xenbus state transition %s -> %s at %s" from_ to_ path

(* ------------------------------------------------------------------ *)
(* Trust-boundary (byzantine frontend) hooks                           *)
(* ------------------------------------------------------------------ *)

let guest_fault t ~domid ~device ~attack ~detail =
  account t;
  emit t Report.Warning "adversary"
    ("guest-" ^ attack)
    "domain %d on %s: %s rejected at the trust boundary (%s)" domid device
    attack detail

let guest_quarantined t ~domid ~device ~action ~faults =
  account t;
  emit t Report.Warning "adversary" "guest-quarantined"
    "quarantine %s: domain %d on %s after %d guest fault(s)" action domid
    device faults

(* ------------------------------------------------------------------ *)
(* Audits                                                              *)
(* ------------------------------------------------------------------ *)

let quiescence t ~pending =
  if pending = 0 then begin
    let blocked =
      Hashtbl.fold
        (fun _ p acc ->
          match p.p_blocked_on with
          | Some what when not p.p_daemon -> (p.p_name, what) :: acc
          | _ -> acc)
        t.procs []
      |> List.sort compare
    in
    if blocked <> [] then
      emit t Report.Warning "sched" "sched-quiescence" ~prov:t.name
        "event queue is empty but %d process(es) are still blocked: %s"
        (List.length blocked)
        (String.concat "; "
           (List.map (fun (n, w) -> Printf.sprintf "%s (on %s)" n w) blocked))
  end

let finalize t ~pending =
  (* Group leaked grants by (granter, grantee) so a leaked pool reads as
     one finding with provenance, not hundreds. *)
  let groups = Hashtbl.create 8 in
  Hashtbl.iter
    (fun gref e ->
      if not e.g_revoked then begin
        let key = (e.g_granter, e.g_grantee) in
        let total, mapped, refs =
          Option.value (Hashtbl.find_opt groups key) ~default:(0, 0, [])
        in
        Hashtbl.replace groups key
          (total + 1, (mapped + if e.g_mapped then 1 else 0), gref :: refs)
      end)
    t.grants;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
  |> List.sort compare
  |> List.iter (fun ((granter, grantee), (total, mapped, refs)) ->
         let refs = List.sort compare refs in
         let sample =
           List.filteri (fun i _ -> i < 8) refs
           |> List.map string_of_int |> String.concat ","
         in
         let sample = if total > 8 then sample ^ ",..." else sample in
         emit t Report.Error "grant" "grant-leak" ~prov:t.name
           "domain %d leaked %d grant(s) to domain %d (%d still mapped; \
            refs %s)"
           granter total grantee mapped sample);
  Hashtbl.fold (fun id pt acc -> (id, pt) :: acc) t.watches []
  |> List.sort compare
  |> List.iter (fun (id, (path, token)) ->
         emit t Report.Warning "xenstore" "xs-orphan-watch" ~prov:t.name
           "watch %d on %s (token %S) was never unregistered" id path token);
  Hashtbl.fold (fun id () acc -> id :: acc) t.txs []
  |> List.sort compare
  |> List.iter (fun id ->
         emit t Report.Warning "xenstore" "xs-open-tx" ~prov:t.name
           "transaction %d left open (never committed or aborted)" id);
  quiescence t ~pending
