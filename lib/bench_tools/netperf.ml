open Kite_sim
open Kite_net

type result = {
  requests : int;
  responses : int;
  latencies_ms : float list;
  avg_ms : float;
}

let run ~sched ~client ~server ~server_ip ?(port = 12865)
    ?(rate_per_sec = 1000) ?(requests = 1000) ?(payload = 64) ~on_done () =
  (* Echo server. *)
  let ssock = Stack.udp_bind server ~port in
  Process.spawn sched ~daemon:true ~name:"netperf-server" (fun () ->
      let rec loop () =
        let src, sport, data = Stack.udp_recv ssock in
        Stack.udp_send server ssock ~dst:src ~dst_port:sport data;
        loop ()
      in
      loop ());
  Process.spawn sched ~name:"netperf-client" (fun () ->
      let csock = Stack.udp_bind client ~port:(port + 1) in
      let engine = Process.engine sched in
      let gap = Time.sec 1 / rate_per_sec in
      let lats = ref [] in
      let responses = ref 0 in
      let data = Bytes.make payload 'r' in
      for _ = 1 to requests do
        let t0 = Engine.now engine in
        Stack.udp_send client csock ~dst:server_ip ~dst_port:port data;
        (match Stack.udp_recv_timeout csock gap with
        | Some _ ->
            incr responses;
            lats := Time.to_ms_f (Engine.now engine - t0) :: !lats
        | None -> ());
        (* Even spacing: wait out the remainder of the slot. *)
        let elapsed = Engine.now engine - t0 in
        if elapsed < gap then Process.sleep (gap - elapsed)
      done;
      let latencies_ms = List.rev !lats in
      let avg_ms =
        match latencies_ms with
        | [] -> 0.0
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      on_done { requests; responses = !responses; latencies_ms; avg_ms })
