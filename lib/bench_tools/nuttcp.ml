open Kite_sim
open Kite_net

type result = {
  sent : int;
  received : int;
  throughput_gbps : float;
  loss_pct : float;
}

let run ~sched ~client ~server ~server_ip ?(port = 5001) ?(payload = 8192)
    ?(offered_gbps = 7.0) ~duration ~on_done () =
  let received = ref 0 in
  let sent = ref 0 in
  (* Receiver: drain datagrams, count them. *)
  let sock_server = Stack.udp_bind server ~port in
  Process.spawn sched ~daemon:true ~name:"nuttcp-rx" (fun () ->
      let rec loop () =
        let _ = Stack.udp_recv sock_server in
        incr received;
        loop ()
      in
      loop ());
  (* Sender: paced bursts.  Send a burst every 100 us to amortize the
     pacing arithmetic, like nuttcp's internal burst clock. *)
  Process.spawn sched ~name:"nuttcp-tx" (fun () ->
      let sock = Stack.udp_bind client ~port:(port + 1) in
      let tick = Time.us 100 in
      let datagrams_per_tick =
        offered_gbps *. 1e9 /. 8.0 *. Time.to_sec_f tick
        /. float_of_int payload
      in
      let data = Bytes.make payload 'u' in
      let deadline = Engine.now (Process.engine sched) + duration in
      (* Fractional datagrams carry over between ticks so the offered rate
         is exact regardless of payload size. *)
      let credit = ref 0.0 in
      let rec loop () =
        if Engine.now (Process.engine sched) < deadline then begin
          credit := !credit +. datagrams_per_tick;
          while !credit >= 1.0 do
            Stack.udp_send client sock ~dst:server_ip ~dst_port:port data;
            incr sent;
            credit := !credit -. 1.0
          done;
          Process.sleep tick;
          loop ()
        end
      in
      loop ();
      (* Allow in-flight datagrams to drain before reporting. *)
      Process.sleep (Time.ms 50);
      let recvd = !received in
      let gbps =
        float_of_int (recvd * payload * 8) /. Time.to_sec_f duration /. 1e9
      in
      let loss =
        if !sent = 0 then 0.0
        else 100.0 *. float_of_int (!sent - recvd) /. float_of_int !sent
      in
      on_done
        { sent = !sent; received = recvd; throughput_gbps = gbps; loss_pct = loss })
