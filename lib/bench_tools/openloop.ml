open Kite_sim

type result = { offered : int; completed : int; elapsed : Time.span }

let run ~sched ?(seed = 42) ?rng ?(burst = 0) ?burst_every ?burst_rng ?gap
    ?stop_after ~rate ~duration ~fire ~on_done () =
  let engine = Process.engine sched in
  let arrival_rng = match rng with Some r -> r | None -> Rng.create seed in
  let burst_rng =
    match burst_rng with
    | Some r -> r
    | None ->
        (* Independent stream: bursts must not consume from (or be
           affected by) the arrival stream — see the .mli contract. *)
        Rng.create (seed lxor 0x62757273 (* "burs" *))
  in
  let mean_gap_ns = 1e9 /. rate in
  let t0 = Engine.now engine in
  let deadline = t0 + duration in
  let offered = ref 0 in
  let completed = ref 0 in
  let returned = ref 0 in
  let gens_open = ref 0 in
  let last_at = ref t0 in
  let finish_if_drained () =
    if !gens_open = 0 && !returned = !offered then
      on_done
        { offered = !offered; completed = !completed; elapsed = !last_at - t0 }
  in
  let arrival () =
    incr offered;
    let seq = !offered in
    (* Each request is its own process: a request stuck in a backlog
       must never hold back the arrival clock.  One shared name keeps
       the CPU profiler's (domain, process) cardinality bounded. *)
    Process.spawn sched ~name:"openloop-req" (fun () ->
        let ok = fire seq in
        if ok then incr completed;
        incr returned;
        last_at := max !last_at (Engine.now engine);
        finish_if_drained ())
  in
  let gen_exit () =
    decr gens_open;
    finish_if_drained ()
  in
  let next_gap =
    match gap with
    | Some f -> fun () -> f arrival_rng ~at:(Engine.now engine - t0)
    | None ->
        fun () -> int_of_float (Rng.exponential arrival_rng ~mean:mean_gap_ns)
  in
  let quota = match stop_after with Some n -> n | None -> max_int in
  incr gens_open;
  Process.spawn sched ~name:"openloop" (fun () ->
      let fired = ref 0 in
      while Engine.now engine < deadline && !fired < quota do
        arrival ();
        incr fired;
        Process.sleep (max 1 (next_gap ()))
      done;
      gen_exit ());
  match burst_every with
  | Some every when burst > 0 ->
      incr gens_open;
      Process.spawn sched ~name:"openloop-burst" (fun () ->
          (* Bursts ride a fixed lattice t0 + k·every, jittered from the
             burst stream by up to 10% of the period so two bursty
             generators never phase-lock.  Back-to-back arrivals at one
             instant: a transient spike the per-stage queueing
             histograms should absorb below the knee. *)
          let jitter_bound = max 1 (every / 10) in
          let rec go k =
            let at = t0 + (k * every) + Rng.int burst_rng jitter_bound in
            if at < deadline then begin
              Process.sleep (max 1 (at - Engine.now engine));
              if Engine.now engine < deadline then begin
                for _ = 1 to burst do
                  arrival ()
                done;
                go (k + 1)
              end
            end
          in
          go 1;
          gen_exit ())
  | _ -> ()
