open Kite_sim

type result = { offered : int; completed : int; elapsed : Time.span }

let run ~sched ?(seed = 42) ~rate ?(burst = 0) ?burst_every ~duration ~fire
    ~on_done () =
  Process.spawn sched ~name:"openloop" (fun () ->
      let engine = Process.engine sched in
      let rng = Rng.create seed in
      let mean_gap_ns = 1e9 /. rate in
      let t0 = Engine.now engine in
      let deadline = t0 + duration in
      let offered = ref 0 in
      let completed = ref 0 in
      let returned = ref 0 in
      let gen_done = ref false in
      let last_at = ref t0 in
      let finish_if_drained () =
        if !gen_done && !returned = !offered then
          on_done
            {
              offered = !offered;
              completed = !completed;
              elapsed = !last_at - t0;
            }
      in
      let arrival () =
        incr offered;
        let seq = !offered in
        (* Each request is its own process: a request stuck in a backlog
           must never hold back the arrival clock.  One shared name keeps
           the CPU profiler's (domain, process) cardinality bounded. *)
        Process.spawn sched ~name:"openloop-req" (fun () ->
            let ok = fire seq in
            if ok then incr completed;
            incr returned;
            last_at := max !last_at (Engine.now engine);
            finish_if_drained ())
      in
      let next_burst =
        ref
          (match burst_every with
          | Some every when burst > 0 -> t0 + every
          | _ -> max_int)
      in
      while Engine.now engine < deadline do
        arrival ();
        (if Engine.now engine >= !next_burst then begin
           (* Back-to-back arrivals at one instant: a transient spike the
              per-stage queueing histograms should absorb below the knee. *)
           for _ = 2 to burst do
             arrival ()
           done;
           match burst_every with
           | Some every -> next_burst := !next_burst + every
           | None -> ()
         end);
        let gap = int_of_float (Rng.exponential rng ~mean:mean_gap_ns) in
        Process.sleep (max 1 gap)
      done;
      gen_done := true;
      finish_if_drained ())
