(** Open-loop load generator for the latency-waterfall experiment: fire
    requests on a Poisson arrival process at a configurable offered rate,
    independent of completions.  Unlike the closed-loop tools (ab,
    memtier, ...), which wait for each response and therefore self-throttle
    at saturation, an open-loop generator keeps offering load past the
    service capacity — the regime where queueing delay overtakes service
    time and the saturation knee appears.

    Optionally a burst of [burst] back-to-back arrivals is injected every
    [burst_every] to probe transient queue buildup below the knee. *)

type result = {
  offered : int;  (** arrivals fired *)
  completed : int;  (** [fire] calls that returned [true] *)
  elapsed : Kite_sim.Time.span;  (** generator start to last completion *)
}

val run :
  sched:Kite_sim.Process.sched ->
  ?seed:int ->
  rate:float ->
  ?burst:int ->
  ?burst_every:Kite_sim.Time.span ->
  duration:Kite_sim.Time.span ->
  fire:(int -> bool) ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** [run ~sched ~rate ~duration ~fire ~on_done ()] spawns a generator
    process that draws exponential inter-arrival gaps with mean
    [1/rate] seconds (i.e. [rate] is the offered rate in requests per
    second) for [duration] of simulated time.  Each arrival spawns its
    own process calling [fire seq] — so a slow request never blocks the
    arrival process, which is the whole point.  [fire] returns whether
    the request completed.  [on_done] runs once every spawned request
    has returned.  Defaults: [seed] 42, no bursts. *)
