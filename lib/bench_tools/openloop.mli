(** Open-loop load generator for the latency-waterfall and swarm
    experiments: fire requests on a Poisson arrival process at a
    configurable offered rate, independent of completions.  Unlike the
    closed-loop tools (ab, memtier, ...), which wait for each response and
    therefore self-throttle at saturation, an open-loop generator keeps
    offering load past the service capacity — the regime where queueing
    delay overtakes service time and the saturation knee appears.

    Optionally a burst of [burst] back-to-back arrivals is injected every
    [burst_every] to probe transient queue buildup below the knee.

    {2 Determinism contract}

    The arrival instants are a pure function of the arrival stream
    ([rng], or [Rng.create seed] when absent), [rate] and [duration] —
    nothing else ever draws from that stream.  Bursts draw their phase
    jitter from a separate stream ([burst_rng], defaulting to a stream
    derived from [seed] alone), so enabling or disabling bursts, link
    impairments, observability layers, or anything [fire] does cannot
    shift the base arrival times under the same seed.  Callers that pass
    an explicit [rng] and want reproducible bursts should pass
    [burst_rng] too. *)

type result = {
  offered : int;  (** arrivals fired *)
  completed : int;  (** [fire] calls that returned [true] *)
  elapsed : Kite_sim.Time.span;  (** generator start to last completion *)
}

val run :
  sched:Kite_sim.Process.sched ->
  ?seed:int ->
  ?rng:Kite_sim.Rng.t ->
  ?burst:int ->
  ?burst_every:Kite_sim.Time.span ->
  ?burst_rng:Kite_sim.Rng.t ->
  ?gap:(Kite_sim.Rng.t -> at:Kite_sim.Time.span -> Kite_sim.Time.span) ->
  ?stop_after:int ->
  rate:float ->
  duration:Kite_sim.Time.span ->
  fire:(int -> bool) ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** [run ~sched ~rate ~duration ~fire ~on_done ()] spawns a generator
    process that draws exponential inter-arrival gaps with mean
    [1/rate] seconds (i.e. [rate] is the offered rate in requests per
    second) for [duration] of simulated time.  Each arrival spawns its
    own process calling [fire seq] — so a slow request never blocks the
    arrival process, which is the whole point.  [fire] returns whether
    the request completed.  [on_done] runs once every spawned request
    has returned.  Bursts, when enabled, run as their own process on the
    lattice [t0 + k*burst_every] (phase-jittered up to 10% of the
    period) and fire [burst] extra arrivals each.  Defaults: [seed] 42,
    no bursts.

    [gap], when given, replaces the exponential draw: it receives the
    arrival stream and the offset since the generator started, and
    returns the next inter-arrival gap — the hook the swarm harness uses
    for heavy-tailed and time-modulated (diurnal / flash-crowd) traffic.
    [stop_after] caps the number of base arrivals (bursts excluded);
    generation stops at whichever of [duration] / [stop_after] comes
    first. *)
