(* A metric registry for one simulated machine.  Everything here is
   deliberately allocation-light on the update path: pushed handles are
   bare refs / histograms, and polled closures are only evaluated when a
   sampler or an exposition surface asks. *)

type kind = Counter | Gauge | Histogram

type labels = (string * string) list

(* One registered instance of a family: its labels, the instrument, and
   a bounded ring buffer of (at, value) samples. *)
type instr =
  | I_counter of int ref
  | I_counter_fn of (unit -> int) ref
  | I_gauge of float ref
  | I_gauge_fn of (unit -> float) ref
  | I_hist of Kite_stats.Histogram.t

type instance = {
  i_labels : labels;
  i_instr : instr;
  s_ats : int array;
  s_vals : float array;
  mutable s_len : int;
  mutable s_head : int;  (* next write slot *)
  (* First-ever sample, kept after the ring wraps so lifetime rates
     survive long runs; [s_change_at] is the last sample time at which
     the value moved, bounding the active window for rate reports. *)
  mutable s_first_at : int;
  mutable s_first_val : float;
  mutable s_change_at : int;
}

type family = {
  f_kind : kind;
  f_help : string;
  f_instances : (string, instance) Hashtbl.t;  (* canonical label key *)
  mutable f_order : string list;  (* label keys, reversed *)
}

type health = Healthy | Alert of string

type alert = {
  alert_at : int;
  alert_probe : string;
  alert_labels : labels;
  alert_msg : string;
}

type probe_rec = {
  p_name : string;
  p_labels : labels;
  mutable p_fn : unit -> health;
  mutable p_alerting : bool;
}

type t = {
  rname : string;
  rinterval : int;
  capacity : int;
  fams : (string, family) Hashtbl.t;
  mutable fam_order : string list;  (* reversed *)
  probes : (string, probe_rec) Hashtbl.t;
  mutable probe_order : string list;  (* reversed *)
  mutable alerts_rev : alert list;
  mutable nalerts : int;
  mutable nsamples : int;
  (* Alert-edge observer (the flight recorder's tap); [None] keeps
     sampling free of extra work. *)
  mutable alert_obs : (alert -> unit) option;
}

let name t = t.rname
let interval t = t.rinterval

(* ------------------------------------------------------------------ *)
(* Names and label canonicalization                                    *)
(* ------------------------------------------------------------------ *)

let name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_name s =
  String.length s > 0
  && (match s.[0] with '0' .. '9' -> false | c -> name_char c)
  && String.for_all name_char s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Registry: invalid %s name %S" what s)

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=" ^ String.escaped v) (canon labels))

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let family t ~kind ~help name =
  check_name "metric" name;
  match Hashtbl.find_opt t.fams name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s is a %s, not a %s" name
             (kind_name f.f_kind) (kind_name kind));
      f
  | None ->
      let f =
        {
          f_kind = kind;
          f_help = help;
          f_instances = Hashtbl.create 8;
          f_order = [];
        }
      in
      Hashtbl.add t.fams name f;
      t.fam_order <- name :: t.fam_order;
      f

let new_instance t labels instr =
  List.iter (fun (k, _) -> check_name "label" k) labels;
  {
    i_labels = canon labels;
    i_instr = instr;
    s_ats = Array.make t.capacity 0;
    s_vals = Array.make t.capacity 0.0;
    s_len = 0;
    s_head = 0;
    s_first_at = min_int;
    s_first_val = 0.0;
    s_change_at = min_int;
  }

(* Find-or-create the instance; [fresh] builds the instrument the first
   time, [reuse] extracts the handle from an existing one (raising when
   the same (family, labels) was registered under another instrument
   style). *)
let instance t ~kind ~help name labels ~fresh ~reuse =
  let f = family t ~kind ~help name in
  let key = label_key labels in
  match Hashtbl.find_opt f.f_instances key with
  | Some i -> reuse name i
  | None ->
      let i = new_instance t labels (fresh ()) in
      Hashtbl.add f.f_instances key i;
      f.f_order <- key :: f.f_order;
      i

type counter = int ref
type gauge = float ref
type histogram = Kite_stats.Histogram.t

let style_clash name =
  invalid_arg
    (Printf.sprintf
       "Registry: %s already registered under another instrument style" name)

let counter t ?(help = "") name labels =
  let i =
    instance t ~kind:Counter ~help name labels
      ~fresh:(fun () -> I_counter (ref 0))
      ~reuse:(fun n i ->
        match i.i_instr with I_counter _ -> i | _ -> style_clash n)
  in
  match i.i_instr with I_counter r -> r | _ -> assert false

let gauge t ?(help = "") name labels =
  let i =
    instance t ~kind:Gauge ~help name labels
      ~fresh:(fun () -> I_gauge (ref 0.0))
      ~reuse:(fun n i ->
        match i.i_instr with I_gauge _ -> i | _ -> style_clash n)
  in
  match i.i_instr with I_gauge r -> r | _ -> assert false

let histogram t ?(help = "") ?base ?factor name labels =
  let i =
    instance t ~kind:Histogram ~help name labels
      ~fresh:(fun () -> I_hist (Kite_stats.Histogram.create ?base ?factor ()))
      ~reuse:(fun n i ->
        match i.i_instr with I_hist _ -> i | _ -> style_clash n)
  in
  match i.i_instr with I_hist h -> h | _ -> assert false

let counter_fn t ?(help = "") name labels fn =
  let i =
    instance t ~kind:Counter ~help name labels
      ~fresh:(fun () -> I_counter_fn (ref fn))
      ~reuse:(fun n i ->
        match i.i_instr with
        | I_counter_fn r ->
            (* Replacement keeps the series: drivers re-register the
               same vif/vbd after a crash/reconnect cycle. *)
            r := fn;
            i
        | _ -> style_clash n)
  in
  ignore i

let gauge_fn t ?(help = "") name labels fn =
  let i =
    instance t ~kind:Gauge ~help name labels
      ~fresh:(fun () -> I_gauge_fn (ref fn))
      ~reuse:(fun n i ->
        match i.i_instr with
        | I_gauge_fn r ->
            r := fn;
            i
        | _ -> style_clash n)
  in
  ignore i

let inc (c : counter) = incr c
let add (c : counter) n = c := !c + n
let set (g : gauge) v = g := v
let observe (h : histogram) v = Kite_stats.Histogram.add h v

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let scalar i =
  match i.i_instr with
  | I_counter r -> float_of_int !r
  | I_counter_fn r -> ( try float_of_int (!r ()) with _ -> Float.nan)
  | I_gauge r -> !r
  | I_gauge_fn r -> ( try !r () with _ -> Float.nan)
  | I_hist h -> float_of_int (Kite_stats.Histogram.count h)

let fam_names t = List.sort String.compare (List.rev t.fam_order)

let families t =
  List.map
    (fun n ->
      let f = Hashtbl.find t.fams n in
      (n, f.f_kind, f.f_help))
    (fam_names t)

let instances_of f =
  List.rev f.f_order
  |> List.sort String.compare
  |> List.map (fun key -> Hashtbl.find f.f_instances key)

let read t =
  List.concat_map
    (fun n ->
      let f = Hashtbl.find t.fams n in
      List.map (fun i -> (n, i.i_labels, scalar i)) (instances_of f))
    (fam_names t)

let find_instance t name labels =
  match Hashtbl.find_opt t.fams name with
  | None -> None
  | Some f -> Hashtbl.find_opt f.f_instances (label_key labels)

let value t name labels = Option.map scalar (find_instance t name labels)

let quantile t name labels q =
  match find_instance t name labels with
  | Some { i_instr = I_hist h; _ } when Kite_stats.Histogram.count h > 0 ->
      Some (Kite_stats.Histogram.quantile h q)
  | _ -> None

let percentile t name labels p = quantile t name labels (p /. 100.)

let hbuckets t name labels =
  match find_instance t name labels with
  | Some { i_instr = I_hist h; _ } -> Some (Kite_stats.Histogram.buckets h)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let push_sample t i ~at v =
  if i.s_first_at = min_int then begin
    i.s_first_at <- at;
    i.s_first_val <- v
  end
  else begin
    let cap = Array.length i.s_ats in
    let j = (i.s_head - 1 + cap) mod cap in
    if i.s_vals.(j) <> v then i.s_change_at <- at
  end;
  i.s_ats.(i.s_head) <- at;
  i.s_vals.(i.s_head) <- v;
  i.s_head <- (i.s_head + 1) mod t.capacity;
  if i.s_len < t.capacity then i.s_len <- i.s_len + 1

let sample t ~at =
  Hashtbl.iter
    (fun _ f ->
      Hashtbl.iter (fun _ i -> push_sample t i ~at (scalar i)) f.f_instances)
    t.fams;
  List.iter
    (fun key ->
      let p = Hashtbl.find t.probes key in
      match (try p.p_fn () with _ -> Healthy) with
      | Healthy -> p.p_alerting <- false
      | Alert msg ->
          if not p.p_alerting then begin
            p.p_alerting <- true;
            let a =
              {
                alert_at = at;
                alert_probe = p.p_name;
                alert_labels = p.p_labels;
                alert_msg = msg;
              }
            in
            t.alerts_rev <- a :: t.alerts_rev;
            t.nalerts <- t.nalerts + 1;
            match t.alert_obs with None -> () | Some f -> f a
          end)
    (List.rev t.probe_order);
  t.nsamples <- t.nsamples + 1

let samples_taken t = t.nsamples

let series t name labels =
  match find_instance t name labels with
  | None -> []
  | Some i ->
      let cap = Array.length i.s_ats in
      let start = if i.s_len < cap then 0 else i.s_head in
      List.init i.s_len (fun k ->
          let j = (start + k) mod cap in
          (i.s_ats.(j), i.s_vals.(j)))

let last_sample t name labels =
  match find_instance t name labels with
  | None -> None
  | Some i ->
      if i.s_len = 0 then None
      else
        let cap = Array.length i.s_ats in
        let j = (i.s_head - 1 + cap) mod cap in
        Some (i.s_ats.(j), i.s_vals.(j))

let rate t name labels =
  match find_instance t name labels with
  | None -> None
  | Some i ->
      if i.s_len = 0 || i.s_first_at = min_int || i.s_change_at = min_int
      then None
      else
        let cap = Array.length i.s_ats in
        let j = (i.s_head - 1 + cap) mod cap in
        let dt = i.s_change_at - i.s_first_at in
        if dt <= 0 then None
        else Some ((i.s_vals.(j) -. i.s_first_val) /. float_of_int dt *. 1e9)

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe t ~name labels fn =
  check_name "probe" name;
  let key = name ^ "#" ^ label_key labels in
  match Hashtbl.find_opt t.probes key with
  | Some p ->
      p.p_fn <- fn;
      p.p_alerting <- false
  | None ->
      Hashtbl.add t.probes key
        { p_name = name; p_labels = canon labels; p_fn = fn; p_alerting = false };
      t.probe_order <- key :: t.probe_order

let alerts t = List.rev t.alerts_rev
let set_alert_observer t obs = t.alert_obs <- obs

let stalled_probe ?(ticks = 3) ~pending ~progress () =
  let last = ref min_int in
  let stalls = ref 0 in
  fun () ->
    let p = pending () in
    let done_ = progress () in
    if p > 0 && done_ = !last then begin
      incr stalls;
      if !stalls >= ticks then
        Alert
          (Printf.sprintf "%d requests pending, no progress for %d ticks" p
             !stalls)
      else Healthy
    end
    else begin
      stalls := 0;
      last := done_;
      Healthy
    end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let default_interval = 100_000_000 (* 100 ms of simulated time *)

let create ?(name = "sim") ?(interval = default_interval) ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Registry.create: capacity must be > 0";
  let t =
    {
      rname = name;
      rinterval = interval;
      capacity;
      fams = Hashtbl.create 64;
      fam_order = [];
      probes = Hashtbl.create 16;
      probe_order = [];
      alerts_rev = [];
      nalerts = 0;
      nsamples = 0;
      alert_obs = None;
    }
  in
  counter_fn t "kite_alerts_total" [] ~help:"Health-probe alerts fired"
    (fun () -> t.nalerts);
  t

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let add_labels b labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun k (l, v) ->
          if k > 0 then Buffer.add_char b ',';
          Buffer.add_string b l;
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let add_sample b name labels v =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b (fmt_value v);
  Buffer.add_char b '\n'

let hist_sum h =
  let n = Kite_stats.Histogram.count h in
  if n = 0 then 0.0 else Kite_stats.Histogram.mean h *. float_of_int n

let add_histogram b name labels h =
  let count = Kite_stats.Histogram.count h in
  let running = ref 0 in
  List.iter
    (fun (_, hi, n) ->
      running := !running + n;
      add_sample b (name ^ "_bucket")
        (labels @ [ ("le", fmt_value hi) ])
        (float_of_int !running))
    (Kite_stats.Histogram.buckets h);
  add_sample b (name ^ "_bucket")
    (labels @ [ ("le", "+Inf") ])
    (float_of_int count);
  add_sample b (name ^ "_sum") labels (hist_sum h);
  add_sample b (name ^ "_count") labels (float_of_int count)

let to_prometheus ts =
  let b = Buffer.create 4096 in
  let tag t labels =
    (* Federation-style: with several machines on one page, each sample
       says which registry it came from. *)
    if List.length ts > 1 then ("machine", t.rname) :: labels else labels
  in
  (* One HELP/TYPE block per family across all registries. *)
  let seen = Hashtbl.create 64 in
  let all_names =
    List.concat_map fam_names ts
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun name ->
      List.iter
        (fun t ->
          match Hashtbl.find_opt t.fams name with
          | None -> ()
          | Some f ->
              if not (Hashtbl.mem seen name) then begin
                Hashtbl.add seen name ();
                if f.f_help <> "" then
                  Buffer.add_string b
                    (Printf.sprintf "# HELP %s %s\n" name f.f_help);
                Buffer.add_string b
                  (Printf.sprintf "# TYPE %s %s\n" name (kind_name f.f_kind))
              end;
              List.iter
                (fun i ->
                  match i.i_instr with
                  | I_hist h -> add_histogram b name (tag t i.i_labels) h
                  | _ -> add_sample b name (tag t i.i_labels) (scalar i))
                (instances_of f))
        ts)
    all_names;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Exposition parsing (the scraper half of the round trip)             *)
(* ------------------------------------------------------------------ *)

let parse_float s =
  match s with
  | "NaN" -> Float.nan
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | s -> (
      try float_of_string s
      with _ -> invalid_arg ("Registry.parse_prometheus: bad value " ^ s))

let parse_sample line =
  let n = String.length line in
  let bad () = invalid_arg ("Registry.parse_prometheus: bad line " ^ line) in
  let rec name_end i =
    if i < n && name_char line.[i] then name_end (i + 1) else i
  in
  let stop = name_end 0 in
  if stop = 0 then bad ();
  let name = String.sub line 0 stop in
  let labels = ref [] in
  let i = ref stop in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let buf = Buffer.create 16 in
    while !i < n && line.[!i] <> '}' do
      (* label name *)
      let lstart = !i in
      while !i < n && line.[!i] <> '=' do incr i done;
      if !i >= n then bad ();
      let lname = String.sub line lstart (!i - lstart) in
      incr i;
      if !i >= n || line.[!i] <> '"' then bad ();
      incr i;
      Buffer.clear buf;
      let closed = ref false in
      while not !closed do
        if !i >= n then bad ();
        (match line.[!i] with
        | '\\' ->
            if !i + 1 >= n then bad ();
            (match line.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            incr i
        | '"' -> closed := true
        | c -> Buffer.add_char buf c);
        incr i
      done;
      labels := (lname, Buffer.contents buf) :: !labels;
      if !i < n && line.[!i] = ',' then incr i
    done;
    if !i >= n then bad ();
    incr i (* '}' *)
  end;
  while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
  if !i >= n then bad ();
  (* The value runs to the next blank (a timestamp may follow; we emit
     none, but a real scraper would tolerate one). *)
  let vstart = !i in
  while !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' do incr i done;
  (name, List.rev !labels, parse_float (String.sub line vstart (!i - vstart)))

let parse_prometheus text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some (parse_sample line))

(* ------------------------------------------------------------------ *)
(* JSON dump                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let add_json_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun k (l, v) ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape l) (json_escape v)))
    labels;
  Buffer.add_char b '}'

let to_json ts =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun ti t ->
      if ti > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n{\"machine\":\"%s\",\"samples\":%d,\"metrics\":["
           (json_escape t.rname) t.nsamples);
      let first = ref true in
      List.iter
        (fun name ->
          let f = Hashtbl.find t.fams name in
          List.iter
            (fun i ->
              if !first then first := false else Buffer.add_string b ",";
              Buffer.add_string b
                (Printf.sprintf "\n {\"name\":\"%s\",\"kind\":\"%s\",\"labels\":"
                   (json_escape name) (kind_name f.f_kind));
              add_json_labels b i.i_labels;
              (match i.i_instr with
              | I_hist h when Kite_stats.Histogram.count h > 0 ->
                  Buffer.add_string b
                    (Printf.sprintf
                       ",\"count\":%d,\"mean\":%s,\"p50\":%s,\"p99\":%s"
                       (Kite_stats.Histogram.count h)
                       (json_num (Kite_stats.Histogram.mean h))
                       (json_num (Kite_stats.Histogram.quantile h 0.5))
                       (json_num (Kite_stats.Histogram.quantile h 0.99)))
              | I_hist _ -> Buffer.add_string b ",\"count\":0"
              | _ ->
                  Buffer.add_string b
                    (Printf.sprintf ",\"value\":%s" (json_num (scalar i))));
              Buffer.add_string b "}")
            (instances_of f))
        (fam_names t);
      Buffer.add_string b "],\n\"alerts\":[";
      List.iteri
        (fun k a ->
          if k > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf "\n {\"at\":%d,\"probe\":\"%s\",\"labels\":"
               a.alert_at (json_escape a.alert_probe));
          add_json_labels b a.alert_labels;
          Buffer.add_string b
            (Printf.sprintf ",\"msg\":\"%s\"}" (json_escape a.alert_msg)))
        (alerts t);
      Buffer.add_string b "]}")
    ts;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Run-wide default sink                                               *)
(* ------------------------------------------------------------------ *)

type sink = { s_interval : int; mutable members : t list (* reversed *) }

let sink ?(interval = default_interval) () = { s_interval = interval; members = [] }

let create_in s ~name =
  let t = create ~name ~interval:s.s_interval () in
  s.members <- t :: s.members;
  t

let registries s = List.rev s.members

let default_ref : sink option ref = ref None
let set_default v = default_ref := v
let default () = !default_ref
