(** Typed metric registry: live telemetry for one simulated machine.

    A [Registry.t] holds counters, gauges and log-bucketed histograms,
    each labelled (per-domain, per-device, per-queue).  Instrumented
    layers keep a [Registry.t option] — exactly the kite_check /
    kite_trace / kite_fault discipline — so a disabled registry costs a
    single [match None] on the hot path.

    Instances register in two styles:

    - {e pushed} handles ({!counter}, {!gauge}, {!histogram}) that the
      hot path updates with {!inc} / {!observe};
    - {e polled} functions ({!counter_fn}, {!gauge_fn}) evaluated only
      at sampling / exposition time, the preferred style for layers that
      already keep their own mutable counters (ring occupancy, active
      grants, live processes, ...).

    {!sample} snapshots every instance into a bounded ring-buffered time
    series keyed by the simulated clock, and evaluates health {!probe}s,
    turning [Ok -> Alert] edges into structured {!alert} records.

    Like the tracer, registries live in a run-wide {!sink} (one registry
    per simulated machine) that `Scenario` consults via {!default}. *)

type t

val create : ?name:string -> ?interval:int -> ?capacity:int -> unit -> t
(** [name] labels the machine in multi-registry exposition (default
    "sim"); [interval] is the sampling period in simulated ns (default
    100 ms) — advisory: the sampler process reads it back with
    {!interval}; [capacity] bounds each instance's time series (default
    512 samples, oldest dropped first). *)

val name : t -> string
val interval : t -> int

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : t -> ?help:string -> string -> (string * string) list -> counter
(** [counter t name labels] registers (or finds) the counter instance of
    family [name] with exactly [labels].  Family names must match
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; registering the same family under a
    different metric kind raises [Invalid_argument]. *)

val gauge : t -> ?help:string -> string -> (string * string) list -> gauge

val histogram :
  t ->
  ?help:string ->
  ?base:float ->
  ?factor:float ->
  string ->
  (string * string) list ->
  histogram
(** Log-bucketed ({!Kite_stats.Histogram}); [base]/[factor] as there. *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_fn :
  t -> ?help:string -> string -> (string * string) list -> (unit -> int) -> unit
(** Polled counter: the closure is read at sampling/exposition time and
    must be monotone.  Re-registering the same (family, labels) instance
    replaces the closure but keeps the recorded series — drivers
    re-register after crash/reconnect. *)

val gauge_fn :
  t ->
  ?help:string ->
  string ->
  (string * string) list ->
  (unit -> float) ->
  unit
(** Polled gauge; replacement semantics as {!counter_fn}. *)

(** {1 Reading} *)

type kind = Counter | Gauge | Histogram

val families : t -> (string * kind * string) list
(** Registered families as (name, kind, help), sorted by name. *)

val read : t -> (string * (string * string) list * float) list
(** Current scalar value of every instance (polled closures evaluated;
    histograms read as their observation count), sorted by family then
    label string.  A polled closure that raises reads as [nan]. *)

val value : t -> string -> (string * string) list -> float option
(** Current value of one instance; [None] if never registered. *)

val quantile : t -> string -> (string * string) list -> float -> float option
(** [quantile t name labels q] from a histogram instance, [q] in [\[0, 1\]]
    as {!Kite_stats.Histogram.quantile} takes it; [None] when the
    instance is missing, empty, or not a histogram.  For the
    [p ∈ \[0, 100\]] convention of {!Kite_stats.Summary.percentile} use
    {!percentile}. *)

val percentile : t -> string -> (string * string) list -> float -> float option
(** [percentile t name labels p] for [p] in [\[0, 100\]] — the single
    bridge between the two quantile conventions: it is exactly
    [quantile t name labels (p /. 100.)]. *)

val hbuckets : t -> string -> (string * string) list -> (float * float * int) list option
(** Non-empty buckets of a histogram instance as (lower bound, upper
    bound, count), ascending — the raw material for windowed SLO math
    (diff two snapshots to isolate the observations in between).  [None]
    when the instance is missing or not a histogram. *)

(** {1 Sampling and time series} *)

val sample : t -> at:int -> unit
(** Snapshot every instance into its ring-buffered series at simulated
    time [at] (ns), then evaluate health probes. *)

val samples_taken : t -> int

val series : t -> string -> (string * string) list -> (int * float) list
(** Recorded (at, value) samples of one instance, oldest first; at most
    [capacity] entries; [] if never registered or never sampled. *)

val last_sample : t -> string -> (string * string) list -> (int * float) option
(** The most recent recorded sample — the steady-state value to report
    when the live instrument has already been torn down. *)

val rate : t -> string -> (string * string) list -> float option
(** Per-second change over the instance's {e active window}: from its
    first-ever sample to the last sample at which the value moved, so an
    idle drain tail does not dilute the figure.  Both anchors live
    outside the ring and survive runs much longer than [capacity] x
    interval.  [None] until the value has been seen to change. *)

(** {1 Health probes and alerts} *)

type health = Healthy | Alert of string

type alert = {
  alert_at : int;  (** sim ns of the sampling tick that saw the edge *)
  alert_probe : string;
  alert_labels : (string * string) list;
  alert_msg : string;
}

val probe :
  t -> name:string -> (string * string) list -> (unit -> health) -> unit
(** Register a health probe evaluated on every {!sample}.  Alerts are
    edge-triggered: only a [Healthy -> Alert] transition appends an
    {!alert} record (re-registering the same (name, labels) replaces
    the closure and resets the edge state).  A probe that raises is
    treated as [Healthy] (never fires). *)

val alerts : t -> alert list
(** Fired alerts, oldest first.  Also exposed as the
    [kite_alerts_total] counter family. *)

val set_alert_observer : t -> (alert -> unit) option -> unit
(** Install (or clear) an observer called on each [Healthy -> Alert]
    edge as {!sample} records it.  At most one observer per registry;
    the flight recorder is the intended client. *)

val stalled_probe :
  ?ticks:int ->
  pending:(unit -> int) ->
  progress:(unit -> int) ->
  unit ->
  unit ->
  health
(** [stalled_probe ~pending ~progress ()] builds a ring-stall probe
    closure: it alerts once [pending () > 0] while [progress ()] (a
    monotone consumed-work counter) has not moved for [ticks]
    consecutive evaluations (default 3), and recovers as soon as
    progress resumes or the ring drains. *)

(** {1 Exposition} *)

val to_prometheus : t list -> string
(** Prometheus text exposition (HELP/TYPE comments, escaped label
    values, histograms as cumulative [_bucket{le=...}] plus [_sum] and
    [_count]).  With more than one registry every sample gains a
    [machine="<registry name>"] label, federation-style. *)

val to_json : t list -> string
(** Machine-readable dump: one JSON object per registry with scalar
    instances, histogram summaries (count/mean/p50/p99) and alerts. *)

val parse_prometheus : string -> (string * (string * string) list * float) list
(** Parse text exposition back into (family, labels, value) samples —
    the scraper half of the round-trip, used by the in-sim scraper and
    the tests.  Comment/blank lines are skipped; a malformed sample
    line raises [Invalid_argument]. *)

(** {1 Run-wide sink} *)

type sink

val sink : ?interval:int -> unit -> sink
(** Fresh sink; [interval] (sim ns, default 100 ms) seeds registries
    made by {!create_in}. *)

val create_in : sink -> name:string -> t
(** New registry registered in the sink, named after its machine. *)

val registries : sink -> t list
(** Members in creation order. *)

val set_default : sink option -> unit
(** Install the run-wide sink consulted by [Scenario] testbeds. *)

val default : unit -> sink option
